//! Streaming metrics: counters, gauges, log-bucketed histograms, and a
//! named registry.
//!
//! The centrepiece is [`Histogram`]: a log-linear bucketed histogram
//! (16 sub-buckets per power of two) with O(1) lock-free `record`,
//! lock-free `merge`, and quantiles whose relative error is bounded by
//! one sub-bucket width — at most `1/16` of the value, and exact below
//! 16. It replaces the serving layer's "copy 65 536 samples and sort
//! them on every snapshot" latency window: recording is a couple of
//! relaxed `fetch_add`s, and a snapshot walks 976 fixed buckets instead
//! of sorting.
//!
//! Quantiles use the **upper-bound convention**: `quantile(q)` returns
//! the inclusive upper bound of the bucket containing the rank-`⌈q·n⌉`
//! sample (clamped to the true maximum). The estimate therefore never
//! under-reports a latency percentile, which is the conservative
//! direction for SLO accounting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

/// A monotonically-increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Back to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins signed level (queue depth, active workers, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Log-linear histogram
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per octave, so a
/// bucket's width is at most 1/16 of its lower bound.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Values 0..16 get exact unit buckets (indices 0..16); each octave
/// `[2^e, 2^(e+1))` for `e in 4..=63` contributes 16 buckets. Total:
/// 16 + 60·16 = 976.
pub const NUM_BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// Bucket index for a value. Exact (width 1) below 16; above that the
/// value's top 4 bits after the leading one select a sub-bucket.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as u64; // e >= SUB_BITS
    (((e - SUB_BITS as u64) << SUB_BITS) + (v >> (e - SUB_BITS as u64))) as usize
}

/// Inclusive `(lower, upper)` value bounds of bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB as usize {
        return (idx as u64, idx as u64);
    }
    let shift = (idx as u64 >> SUB_BITS) - 1;
    let m = idx as u64 - (shift << SUB_BITS);
    let lower = m << shift;
    let width = 1u64 << shift;
    // `lower + (width - 1)`: the top bucket's upper bound is exactly
    // u64::MAX, so adding `width` first would overflow.
    (lower, lower + (width - 1))
}

/// A streaming log-bucketed histogram over `u64` samples.
///
/// `record` is wait-free (a few relaxed atomic adds); `merge` and
/// quantile queries run concurrently with recording and observe a
/// best-effort consistent view. Quantile error is bounded by one bucket
/// width: the estimate `p` for a true value `v` satisfies
/// `v <= p <= v + width(bucket(v))`, with `width <= v/16` for `v >= 16`
/// and `width = 0` below 16.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram (allocates its 976 buckets once).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. O(1), wait-free, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (exact: `sum / count`). 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum() as f64 / n as f64
    }

    /// The `q`-quantile (`0 < q <= 1`) under the upper-bound convention:
    /// the inclusive upper bound of the bucket holding the sample of rank
    /// `⌈q·n⌉`, clamped to [`Histogram::max`]. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_bounds(idx).1.min(self.max());
            }
        }
        // Racing recorders can leave `count` ahead of the bucket sums for
        // an instant; the max is the right answer for any tail rank.
        self.max()
    }

    /// Adds `other`'s samples into `self` (bucket-wise; max via
    /// `fetch_max`). Both histograms may keep recording concurrently.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v != 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Discards all samples.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time summary (used by the exporters).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Fixed summary of a [`Histogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Median estimate (upper-bound convention).
    pub p50: u64,
    /// 95th percentile estimate.
    pub p95: u64,
    /// 99th percentile estimate.
    pub p99: u64,
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A named collection of metrics, the unit the exporters render. Names
/// are sorted (`BTreeMap`) so every export is byte-stable.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use. The returned handle
    /// can be cached; `inc`/`add` on it never touch the registry lock.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = crate::lock(&self.counters);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = crate::lock(&self.gauges);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = crate::lock(&self.histograms);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// All counters, name-sorted, with current values.
    pub fn counters(&self) -> Vec<(String, u64)> {
        crate::lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All gauges, name-sorted, with current levels.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        crate::lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histograms, name-sorted, summarised.
    pub fn histograms(&self) -> Vec<(String, HistogramSummary)> {
        crate::lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect()
    }
}

/// The process-wide default registry. Library code that doesn't want to
/// thread a [`Registry`] handle records here; exporters read it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_roundtrip() {
        let mut probe: Vec<u64> = (0..2048).collect();
        for e in 4..64u32 {
            let base = 1u64 << e;
            // `wrapping` so the top octave's last value is u64::MAX.
            probe.extend([
                base,
                base + 1,
                base + base / 2,
                base.wrapping_mul(2).wrapping_sub(1),
            ]);
        }
        probe.push(u64::MAX);
        probe.sort_unstable();
        let mut prev_idx = None;
        for &v in &probe {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "idx {idx} for {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} outside [{lo},{hi}] (idx {idx})");
            // Relative width bound: width-1 <= lower/16 for log buckets.
            assert!(hi - lo <= lo / SUB || v < SUB, "bucket too wide at {v}");
            if let Some(p) = prev_idx {
                assert!(idx >= p, "indices must be monotone in value");
            }
            prev_idx = Some(idx);
        }
        // Adjacent buckets tile the line exactly.
        for idx in 0..NUM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (lo_next, _) = bucket_bounds(idx + 1);
            assert_eq!(hi.wrapping_add(1), lo_next, "gap after bucket {idx}");
        }
    }

    #[test]
    fn quantiles_on_uniform_1_to_100() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // Upper-bound convention: rank-50 sample (50) sits in bucket
        // [50,51] → 51; rank-95 (95) in [92,95] → 95; rank-99 (99) in
        // [96,99] → 99.
        assert_eq!(h.quantile(0.50), 51);
        assert_eq!(h.quantile(0.95), 95);
        assert_eq!(h.quantile(0.99), 99);
        assert_eq!(h.quantile(1.0), 100);
    }

    /// The satellite pin: streaming quantile vs an exact sort, error at
    /// most one bucket width, never under the exact value.
    #[test]
    fn quantile_error_bounded_by_bucket_width_vs_exact_sort() {
        // A skewed multi-octave distribution (xorshift, fixed seed).
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut samples: Vec<u64> = Vec::with_capacity(10_000);
        let h = Histogram::new();
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = (x % 1_000) * (x % 97) + (x % 7); // heavy tail, spans octaves
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for &q in &[0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let approx = h.quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            let width = hi - lo;
            assert!(approx >= exact, "q={q}: {approx} under-reports {exact}");
            assert!(
                approx - exact <= width,
                "q={q}: {approx} off exact {exact} by more than bucket width {width}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in 0..500u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record(v * 3);
            whole.record(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.max(), whole.max());
        for &q in &[0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p99), (0, 0, 0));
    }

    #[test]
    fn reset_clears_samples() {
        let h = Histogram::new();
        h.record(7);
        h.record(9000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        h.record(5);
        assert_eq!(h.quantile(1.0), 5);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(k * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.max(), 39_999);
    }

    #[test]
    fn registry_handles_are_shared_and_sorted() {
        let r = Registry::new();
        let c1 = r.counter("requests");
        let c2 = r.counter("requests");
        c1.inc();
        c2.add(2);
        assert_eq!(r.counter("requests").get(), 3);
        r.gauge("depth").set(-4);
        r.histogram("lat").record(10);
        let names: Vec<String> = {
            r.counter("aardvark").inc();
            r.counters().into_iter().map(|(n, _)| n).collect()
        };
        assert_eq!(names, vec!["aardvark".to_string(), "requests".to_string()]);
        assert_eq!(r.gauges(), vec![("depth".to_string(), -4)]);
        assert_eq!(r.histograms()[0].1.count, 1);
    }
}
