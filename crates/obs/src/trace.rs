//! Lock-free span/event tracing.
//!
//! Each thread that records gets its own fixed-capacity ring buffer of
//! span records; a slot is a tiny seqlock (a sequence word plus plain
//! atomic fields), so the single owning writer never blocks and a
//! concurrent [`snapshot`] from another thread simply skips slots it
//! catches mid-write. Records carry `(span_id, parent, name, t_start,
//! t_end, payload)` with timestamps from [`crate::now_ns`] — one process
//! anchor, so spans from different threads land on one timeline.
//!
//! Tracing is off unless the `HS_TRACE` environment variable is set to a
//! non-empty value other than `0` (or [`set_enabled`] is called). When
//! off, every entry point is one relaxed atomic load and performs **no**
//! heap allocation — cheap enough to leave the instrumentation compiled
//! into the serving hot path unconditionally (`tests/obs_alloc.rs` and the
//! `obs_overhead` bench pin this).
//!
//! Ring capacity is `HS_TRACE_CAPACITY` records per thread (default
//! 8192). When a ring wraps, the oldest records are overwritten and
//! counted in [`ThreadTrace::dropped`] — tracing sheds history rather
//! than ever stalling the traced code.

use std::cell::{Cell, OnceCell};
use std::sync::atomic::{fence, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::now_ns;

// ---------------------------------------------------------------------------
// Enable state
// ---------------------------------------------------------------------------

/// 0 = uninitialised (consult `HS_TRACE` on first use), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether tracing is currently enabled. One relaxed atomic load on the
/// fast path; the first call per process consults `HS_TRACE`.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_state(),
        s => s == 2,
    }
}

#[cold]
fn init_state() -> bool {
    let on = match std::env::var("HS_TRACE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    };
    let _ = STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == 2
}

/// Force tracing on or off at runtime, overriding `HS_TRACE`. Used by
/// tests and the overhead bench to measure both sides in one process.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Serialises tests that mutate process-global tracing state
/// ([`set_enabled`] / [`reset`]). Hold the returned guard for the duration
/// of the test; `cargo test` runs tests in one binary concurrently, so two
/// unserialised tests would see each other's records.
pub fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    crate::lock(LOCK.get_or_init(|| Mutex::new(())))
}

// ---------------------------------------------------------------------------
// Per-thread seqlock ring
// ---------------------------------------------------------------------------

/// One ring slot. `seq` is the seqlock word: 0 = never written, odd = a
/// write is in flight, even ≥ 2 = stable. The name of a span is stored as
/// the decomposed pointer/length of a `&'static str`; the seqlock
/// guarantees a reader only reconstructs a pair that was written together.
struct Slot {
    seq: AtomicU64,
    span_id: AtomicU64,
    parent: AtomicU64,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    t_start: AtomicU64,
    t_end: AtomicU64,
    payload: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            name_ptr: AtomicUsize::new(0),
            name_len: AtomicUsize::new(0),
            t_start: AtomicU64::new(0),
            t_end: AtomicU64::new(0),
            payload: AtomicU64::new(0),
        }
    }
}

/// A per-thread trace ring. Only the owning thread writes; any thread may
/// read via [`snapshot`]. Rings are registered globally and outlive their
/// thread so records survive worker exit.
struct Ring {
    tid: u64,
    slots: Box<[Slot]>,
    /// Total records ever pushed (monotonic; slot index is `head % cap`).
    head: AtomicU64,
    /// Low-water mark set by [`reset`]: records below it are not reported.
    flushed: AtomicU64,
}

impl Ring {
    fn new(tid: u64, capacity: usize) -> Self {
        let slots: Vec<Slot> = (0..capacity).map(|_| Slot::new()).collect();
        Ring {
            tid,
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            flushed: AtomicU64::new(0),
        }
    }

    /// Single-writer push (callers guarantee only the owning thread calls
    /// this). Seqlock publish: mark the slot in-flight, store the fields,
    /// mark it stable, then advance `head`.
    fn push(&self, rec: &SpanRecord) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        let s = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.span_id.store(rec.span_id, Ordering::Relaxed);
        slot.parent.store(rec.parent, Ordering::Relaxed);
        slot.name_ptr
            .store(rec.name.as_ptr() as usize, Ordering::Relaxed);
        slot.name_len.store(rec.name.len(), Ordering::Relaxed);
        slot.t_start.store(rec.t_start_ns, Ordering::Relaxed);
        slot.t_end.store(rec.t_end_ns, Ordering::Relaxed);
        slot.payload.store(rec.payload, Ordering::Relaxed);
        slot.seq.store(s + 2, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Seqlock read of one slot. Returns `None` for never-written slots
    /// and for slots caught mid-write (the writer will have bumped `seq`).
    fn read_slot(&self, index: u64) -> Option<SpanRecord> {
        let slot = &self.slots[(index % self.slots.len() as u64) as usize];
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None;
        }
        let span_id = slot.span_id.load(Ordering::Relaxed);
        let parent = slot.parent.load(Ordering::Relaxed);
        let name_ptr = slot.name_ptr.load(Ordering::Relaxed);
        let name_len = slot.name_len.load(Ordering::Relaxed);
        let t_start_ns = slot.t_start.load(Ordering::Relaxed);
        let t_end_ns = slot.t_end.load(Ordering::Relaxed);
        let payload = slot.payload.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != s1 {
            return None;
        }
        // SAFETY: the seqlock validation above proves `name_ptr`/`name_len`
        // were stored together by one completed `push`, and every `push`
        // decomposes a `&'static str` — so the pair denotes valid UTF-8
        // bytes that live for the rest of the program.
        let name: &'static str = unsafe {
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                name_ptr as *const u8,
                name_len,
            ))
        };
        Some(SpanRecord {
            span_id,
            parent,
            name,
            t_start_ns,
            t_end_ns,
            payload,
        })
    }

    /// Collects the retained window `[max(head - cap, flushed), head)`.
    /// A record overwritten between reading `head` and reading its slot is
    /// reported in its newer incarnation — snapshots taken while writers
    /// run are best-effort, never torn.
    fn collect(&self) -> ThreadTrace {
        let head = self.head.load(Ordering::Acquire);
        let flushed = self.flushed.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let lo = flushed.max(head.saturating_sub(cap));
        let mut records = Vec::with_capacity((head - lo) as usize);
        for i in lo..head {
            if let Some(r) = self.read_slot(i) {
                records.push(r);
            }
        }
        ThreadTrace {
            tid: self.tid,
            dropped: lo - flushed,
            records,
        }
    }
}

fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("HS_TRACE_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(8192)
            .max(16)
    })
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
}

fn register_ring() -> Arc<Ring> {
    let mut rings = crate::lock(registry());
    // Reuse a ring whose owning thread has exited (the registry then holds
    // the only reference). Load generators spawn short-lived threads by the
    // dozen, and paying a fresh multi-hundred-KiB ring allocation on each
    // one's first record would dominate the traced path — reuse makes ring
    // cost O(peak live threads), not O(threads ever). The claim is race-free
    // because it happens under the registry lock and a live owner always
    // holds a second `Arc` from its thread-local slot. A reused ring keeps
    // its `tid` and its previous owner's records (they were real records
    // and snapshots must keep reporting them): successive short-lived
    // threads simply share one trace track.
    if let Some(ring) = rings.iter().find(|r| Arc::strong_count(r) == 1) {
        return Arc::clone(ring);
    }
    let ring = Arc::new(Ring::new(
        NEXT_TID.fetch_add(1, Ordering::Relaxed),
        ring_capacity(),
    ));
    rings.push(Arc::clone(&ring));
    ring
}

/// Writes one record into the calling thread's ring. `try_with` so spans
/// dropped during thread-local teardown are silently shed rather than
/// panicking.
fn record(rec: &SpanRecord) {
    let _ = RING.try_with(|cell| cell.get_or_init(register_ring).push(rec));
}

// ---------------------------------------------------------------------------
// Public recording API
// ---------------------------------------------------------------------------

/// Allocates a fresh correlation/span id, or 0 when tracing is off. Used
/// by `crates/serve` to stamp each request with a trace id at admission so
/// later explicit-time records can be grouped per request.
#[inline]
pub fn next_id() -> u64 {
    if !enabled() {
        return 0;
    }
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// Opens a span named `name` covering the guard's lifetime. The span is
/// recorded when the guard drops; nested `span` calls on the same thread
/// chain their `parent` automatically. Inert (id 0, records nothing) when
/// tracing is off.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            prev_parent: 0,
            name,
            t_start: 0,
            payload: Cell::new(0),
        };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let prev_parent = CURRENT_PARENT
        .try_with(|c| {
            let p = c.get();
            c.set(id);
            p
        })
        .unwrap_or(0);
    SpanGuard {
        id,
        prev_parent,
        name,
        t_start: now_ns(),
        payload: Cell::new(0),
    }
}

/// Records a zero-duration instant event (e.g. a brownout transition or a
/// shed request) under the current span. No-op when tracing is off.
#[inline]
pub fn instant(name: &'static str, payload: u64) {
    if !enabled() {
        return;
    }
    let t = now_ns();
    record(&SpanRecord {
        span_id: NEXT_SPAN.fetch_add(1, Ordering::Relaxed),
        parent: CURRENT_PARENT.try_with(Cell::get).unwrap_or(0),
        name,
        t_start_ns: t,
        t_end_ns: t,
        payload,
    });
}

/// Records a span with explicit timestamps (anchor nanoseconds, see
/// [`crate::instant_ns`]) and an explicit parent. Returns the new span's
/// id (0 when tracing is off) so callers can parent further records under
/// it — `crates/serve` uses this to reconstruct per-request timelines from
/// timestamps captured before the batch executed.
pub fn span_at(
    name: &'static str,
    t_start_ns: u64,
    t_end_ns: u64,
    parent: u64,
    payload: u64,
) -> u64 {
    if !enabled() {
        return 0;
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    record(&SpanRecord {
        span_id: id,
        parent,
        name,
        t_start_ns,
        t_end_ns,
        payload,
    });
    id
}

/// RAII guard for an open span; records the span on drop.
pub struct SpanGuard {
    id: u64,
    prev_parent: u64,
    name: &'static str,
    t_start: u64,
    payload: Cell<u64>,
}

impl SpanGuard {
    /// The span's id (0 when tracing was off at creation).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a `u64` payload (request trace id, round number, batch
    /// size, …) recorded with the span when the guard drops.
    pub fn set_payload(&self, payload: u64) {
        self.payload.set(payload);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        record(&SpanRecord {
            span_id: self.id,
            parent: self.prev_parent,
            name: self.name,
            t_start_ns: self.t_start,
            t_end_ns: now_ns(),
            payload: self.payload.get(),
        });
        let _ = CURRENT_PARENT.try_with(|c| c.set(self.prev_parent));
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// One recorded span or instant event (an instant has
/// `t_start_ns == t_end_ns`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the process (ids are never reused).
    pub span_id: u64,
    /// Enclosing span's id, or 0 for a root span.
    pub parent: u64,
    /// Static span name, e.g. `"batch_execute"`.
    pub name: &'static str,
    /// Start time in anchor nanoseconds ([`crate::now_ns`] timeline).
    pub t_start_ns: u64,
    /// End time in anchor nanoseconds.
    pub t_end_ns: u64,
    /// Caller-defined correlation value (trace id, round, batch size, …).
    pub payload: u64,
}

/// All retained records from one thread's ring, in write order.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Small dense thread number assigned at first record (not the OS tid).
    pub tid: u64,
    /// Records lost to ring wraparound since the last [`reset`].
    pub dropped: u64,
    /// Retained records, oldest first.
    pub records: Vec<SpanRecord>,
}

/// A point-in-time copy of every thread's retained records.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Per-thread traces, ordered by `tid`.
    pub threads: Vec<ThreadTrace>,
}

impl TraceSnapshot {
    /// Total records across all threads.
    pub fn total_records(&self) -> usize {
        self.threads.iter().map(|t| t.records.len()).sum()
    }

    /// Iterator over every record, all threads.
    pub fn records(&self) -> impl Iterator<Item = &SpanRecord> {
        self.threads.iter().flat_map(|t| t.records.iter())
    }

    /// Total records lost to ring wraparound across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }
}

/// Copies the retained records of every registered ring. Safe to call
/// while writers are active: slots caught mid-write are skipped, never
/// torn. Threads with nothing to report are omitted.
pub fn snapshot() -> TraceSnapshot {
    let rings = crate::lock(registry());
    let mut threads: Vec<ThreadTrace> = rings
        .iter()
        .map(|r| r.collect())
        .filter(|t| !t.records.is_empty() || t.dropped > 0)
        .collect();
    threads.sort_by_key(|t| t.tid);
    TraceSnapshot { threads }
}

/// Discards all currently-retained records (rings stay registered). Used
/// between bench phases and by tests to isolate what they record.
pub fn reset() {
    for ring in crate::lock(registry()).iter() {
        ring.flushed
            .store(ring.head.load(Ordering::Acquire), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn rec(i: u64) -> SpanRecord {
        SpanRecord {
            span_id: i,
            parent: 0,
            name: "wrap",
            t_start_ns: i,
            t_end_ns: i + 1,
            payload: i,
        }
    }

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_dropped() {
        let ring = Ring::new(7, 16);
        for i in 0..21 {
            ring.push(&rec(i));
        }
        let t = ring.collect();
        assert_eq!(t.tid, 7);
        assert_eq!(t.dropped, 5, "21 pushes into 16 slots drop the oldest 5");
        assert_eq!(t.records.len(), 16);
        let ids: Vec<u64> = t.records.iter().map(|r| r.span_id).collect();
        assert_eq!(ids, (5..21).collect::<Vec<u64>>());
        assert!(t.records.iter().all(|r| r.name == "wrap"));
    }

    #[test]
    fn flush_then_wrap_reports_drop_relative_to_flush() {
        let ring = Ring::new(1, 16);
        for i in 0..10 {
            ring.push(&rec(i));
        }
        ring.flushed
            .store(ring.head.load(Ordering::Acquire), Ordering::Release);
        assert_eq!(ring.collect().records.len(), 0);
        for i in 10..40 {
            ring.push(&rec(i));
        }
        let t = ring.collect();
        assert_eq!(t.records.len(), 16);
        // 30 post-flush pushes, 16 retained → 14 dropped since the flush.
        assert_eq!(t.dropped, 14);
    }

    #[test]
    fn unwritten_slots_are_skipped() {
        let ring = Ring::new(2, 16);
        ring.push(&rec(1));
        ring.push(&rec(2));
        let t = ring.collect();
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn concurrent_reader_never_sees_torn_records() {
        let ring = Arc::new(Ring::new(3, 32));
        let stop = Arc::new(AtomicBool::new(false));
        let names: [&'static str; 2] = ["alpha", "omega_long_name"];
        let writer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    ring.push(&SpanRecord {
                        span_id: i,
                        parent: i,
                        name: names[(i % 2) as usize],
                        t_start_ns: i,
                        t_end_ns: i,
                        payload: i,
                    });
                    i += 1;
                }
            })
        };
        for _ in 0..2000 {
            for r in ring.collect().records {
                // A record is internally consistent iff every field was
                // written in the same push: all fields carry the counter.
                assert_eq!(r.span_id, r.parent);
                assert_eq!(r.span_id, r.t_start_ns);
                assert_eq!(r.span_id, r.payload);
                assert_eq!(r.name, names[(r.span_id % 2) as usize]);
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn spans_nest_and_snapshot_from_four_threads() {
        let _g = test_guard();
        set_enabled(true);
        reset();
        // The barrier keeps all four threads alive until each has recorded,
        // so ring reuse cannot coalesce them onto fewer than four rings.
        let gate = Arc::new(std::sync::Barrier::new(4));
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let outer = span("outer");
                        outer.set_payload(k);
                        let inner = span("inner");
                        drop(inner);
                        drop(outer);
                    }
                    gate.wait();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = snapshot();
        set_enabled(false);
        let outers: Vec<&SpanRecord> = snap.records().filter(|r| r.name == "outer").collect();
        let inners: Vec<&SpanRecord> = snap.records().filter(|r| r.name == "inner").collect();
        assert_eq!(outers.len(), 200, "4 threads x 50 outer spans");
        assert_eq!(inners.len(), 200);
        // Each inner's parent must be an outer id from the same thread,
        // and every outer is a root.
        assert!(outers.iter().all(|o| o.parent == 0));
        for t in &snap.threads {
            let outer_ids: Vec<u64> = t
                .records
                .iter()
                .filter(|r| r.name == "outer")
                .map(|r| r.span_id)
                .collect();
            for inner in t.records.iter().filter(|r| r.name == "inner") {
                assert!(outer_ids.contains(&inner.parent));
                assert!(inner.t_start_ns >= now_ns_floor(&outer_ids, t, inner.parent));
            }
        }
        assert!(snap.threads.len() >= 4);
        reset();
        assert_eq!(snapshot().total_records(), 0);
    }

    #[test]
    fn sequential_threads_reuse_rings_instead_of_allocating() {
        let _g = test_guard();
        set_enabled(true);
        reset();
        let rings_before = crate::lock(registry()).len();
        // each thread records then fully exits before the next starts, so
        // after the first at most one new ring is ever allocated
        for i in 0..8u64 {
            std::thread::spawn(move || instant("reused", i))
                .join()
                .unwrap();
        }
        set_enabled(false);
        let rings_after = crate::lock(registry()).len();
        assert!(
            rings_after <= rings_before + 1,
            "8 sequential threads must share one pooled ring \
             ({rings_before} rings before, {rings_after} after)"
        );
        // every record is still reported, whatever ring it landed in
        let reused: Vec<u64> = snapshot()
            .records()
            .filter(|r| r.name == "reused")
            .map(|r| r.payload)
            .collect();
        assert_eq!(reused.len(), 8);
        reset();
    }

    /// Start time of the outer span `parent` within `t` (0 if absent).
    fn now_ns_floor(outer_ids: &[u64], t: &ThreadTrace, parent: u64) -> u64 {
        if !outer_ids.contains(&parent) {
            return 0;
        }
        t.records
            .iter()
            .find(|r| r.span_id == parent)
            .map(|r| r.t_start_ns)
            .unwrap_or(0)
    }

    #[test]
    fn disabled_paths_are_inert() {
        let _g = test_guard();
        set_enabled(false);
        reset();
        assert_eq!(next_id(), 0);
        let g = span("nope");
        assert_eq!(g.id(), 0);
        drop(g);
        instant("nope", 9);
        assert_eq!(span_at("nope", 0, 1, 0, 0), 0);
        assert_eq!(snapshot().total_records(), 0);
    }

    #[test]
    fn span_at_records_explicit_times_and_parent() {
        let _g = test_guard();
        set_enabled(true);
        reset();
        let root = span_at("request", 100, 900, 0, 42);
        assert!(root != 0);
        let child = span_at("queue_wait", 100, 400, root, 42);
        let snap = snapshot();
        set_enabled(false);
        reset();
        let req = snap.records().find(|r| r.span_id == root).unwrap();
        assert_eq!((req.t_start_ns, req.t_end_ns, req.payload), (100, 900, 42));
        let qw = snap.records().find(|r| r.span_id == child).unwrap();
        assert_eq!(qw.parent, root);
    }
}
