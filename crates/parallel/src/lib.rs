//! A minimal scoped thread pool shared by every data-parallel subsystem in
//! the workspace: the blocked-GEMM row loop, `Conv2d` batch loops, ISP
//! row-band stages and federated-learning client training.
//!
//! Design goals, in order:
//!
//! 1. **One pool.** All subsystems share a single process-wide pool sized to
//!    the machine (`HS_PARALLEL_THREADS` overrides). The FL simulator fans
//!    out client updates on the same pool the tensor kernels use.
//! 2. **No oversubscription.** Work spawned *from inside* a pool worker runs
//!    inline on that worker instead of being re-queued, so a parallel FL
//!    round running parallel convolutions degrades to per-client serial
//!    kernels rather than `clients × bands` runnable threads.
//! 3. **Near-zero dependencies.** The build environment has no crates
//!    registry, so this replaces `rayon` with `std::thread` +
//!    `Mutex`/`Condvar`. The one workspace dependency is `hs-obs`, whose
//!    anchored monotonic clock feeds the [`pool_stats`] health read-out
//!    (tasks run, cumulative worker idle time, queue depth) — `hs-obs` in
//!    turn depends only on the vendored `serde`, keeping this crate a leaf
//!    of the runtime dependency graph.
//!
//! The API is deliberately small: [`scope`] with [`Scope::spawn`] (the
//! crossbeam/rayon-scope shape), plus [`parallel_for`] and
//! [`parallel_chunks_mut`] conveniences layered on top.
//!
//! # Safety model
//!
//! Spawned closures may borrow from the caller's stack (`'scope` lifetime).
//! Internally the closure is type-erased to `'static` (the one `unsafe` in
//! this crate) which is sound because [`scope`] does not return — by normal
//! exit *or* panic — until every spawned task has finished running, so no
//! borrow outlives its owner. Task panics are caught on the worker,
//! forwarded, and re-raised on the spawning thread after all sibling tasks
//! drain.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod sync;

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Queue-path tasks executed since process start (inline-degraded spawns
/// are not queued and not counted).
static TASKS_RUN: AtomicU64 = AtomicU64::new(0);

/// Cumulative nanoseconds pool workers have spent parked waiting for work
/// (on the `hs_obs` anchor timeline).
static IDLE_NS: AtomicU64 = AtomicU64::new(0);

type Job = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

thread_local! {
    /// True while this thread is executing pool tasks; nested spawns then run
    /// inline to keep the runnable-thread count at the pool size.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Tracks one `scope` invocation: outstanding task count plus the first
/// panic raised by any of its tasks.
struct TaskGroup {
    state: Mutex<GroupState>,
    done: Condvar,
}

struct GroupState {
    pending: usize,
    panic: Option<PanicPayload>,
}

impl TaskGroup {
    fn new() -> Arc<Self> {
        Arc::new(TaskGroup {
            state: Mutex::new(GroupState {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        })
    }

    fn task_finished(&self, panic: Option<PanicPayload>) {
        let mut state = sync::lock(&self.state);
        state.pending -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.pending == 0 {
            self.done.notify_all();
        }
    }
}

struct QueuedTask {
    job: Job,
    group: Arc<TaskGroup>,
}

impl QueuedTask {
    /// Runs the job with panic capture and completion accounting.
    fn run(self) {
        TASKS_RUN.fetch_add(1, Ordering::Relaxed);
        let was_in_pool = IN_POOL.with(|f| f.replace(true));
        let result = catch_unwind(AssertUnwindSafe(self.job));
        IN_POOL.with(|f| f.set(was_in_pool));
        self.group.task_finished(result.err());
    }
}

/// The process-wide pool: an injector queue plus `workers` waiting threads.
struct Pool {
    queue: Mutex<VecDeque<QueuedTask>>,
    work_ready: Condvar,
    workers: usize,
}

impl Pool {
    fn with_workers(workers: usize) -> Arc<Pool> {
        let pool = Arc::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            workers,
        });
        for i in 0..workers {
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("hs-parallel-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("failed to spawn pool worker");
        }
        pool
    }

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut queue = sync::lock(&self.queue);
                match queue.pop_front() {
                    Some(task) => task,
                    None => {
                        // Work was not immediately available: charge the
                        // park time to the pool-health idle counter.
                        let idle_from = hs_obs::now_ns();
                        let task = loop {
                            if let Some(task) = queue.pop_front() {
                                break task;
                            }
                            queue = sync::wait(&self.work_ready, queue);
                        };
                        IDLE_NS.fetch_add(
                            hs_obs::now_ns().saturating_sub(idle_from),
                            Ordering::Relaxed,
                        );
                        task
                    }
                }
            };
            task.run();
        }
    }

    fn push(&self, task: QueuedTask) {
        sync::lock(&self.queue).push_back(task);
        self.work_ready.notify_one();
    }

    fn try_pop(&self) -> Option<QueuedTask> {
        sync::lock(&self.queue).pop_front()
    }
}

fn global_pool() -> &'static Arc<Pool> {
    static POOL: OnceLock<Arc<Pool>> = OnceLock::new();
    // the pool is sized once from the env/machine base value; a later
    // `set_num_threads` override changes how wide callers fan out, never the
    // worker count
    POOL.get_or_init(|| Pool::with_workers(base_threads().saturating_sub(1)))
}

/// Runtime override installed by [`set_num_threads`] (0 = none).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The env/machine-derived parallelism target: `HS_PARALLEL_THREADS` if set,
/// otherwise the machine's available parallelism. At least 1. Cached after
/// the first read.
fn base_threads() -> usize {
    static N: AtomicUsize = AtomicUsize::new(0);
    let cached = N.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("HS_PARALLEL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1)
        });
    N.store(n, Ordering::Relaxed);
    n
}

/// The parallelism the pool targets: the [`set_num_threads`] override when
/// one is installed, else `HS_PARALLEL_THREADS`, else the machine's
/// available parallelism. At least 1.
pub fn num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => base_threads(),
        n => n,
    }
}

/// Overrides the parallelism target reported by [`num_threads`] for the
/// rest of the process (or until called again); `None` restores the
/// env/machine default. The worker pool keeps its original size, so this
/// only changes how wide fan-out sites shard their work — never the
/// runnable-thread count. Lowering the target is the knob the eval-scaling
/// bench sweeps to record a 1/2/4-thread curve in a single process; raising
/// it above the pool size just queues more, smaller tasks for the same
/// workers.
pub fn set_num_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::Relaxed);
}

/// True when called from inside a pool task (work should stay serial).
pub fn inside_pool() -> bool {
    IN_POOL.with(|f| f.get())
}

/// A point-in-time health read-out of the shared pool, the `hs-obs`
/// instrumentation surface for this crate. Exported (e.g. into the
/// `hs_obs` global registry) by whoever polls it; this crate only counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool was built with (0 on single-core machines,
    /// where every spawn degrades to inline execution).
    pub workers: usize,
    /// Tasks currently queued and not yet claimed by any worker.
    pub queue_depth: usize,
    /// Queue-path tasks executed since process start (by workers *and* by
    /// scope callers helping drain; inline-degraded spawns are not queued
    /// and not counted).
    pub tasks_run: u64,
    /// Cumulative nanoseconds workers have spent parked waiting for work.
    /// Rises while the pool is starved; flat while it is saturated.
    pub idle_ns: u64,
}

/// Samples [`PoolStats`] from the shared pool. Cheap (one queue lock plus
/// two relaxed loads) and safe to call from any thread, including pool
/// workers.
pub fn pool_stats() -> PoolStats {
    let pool = global_pool();
    PoolStats {
        workers: pool.workers,
        queue_depth: sync::lock(&pool.queue).len(),
        tasks_run: TASKS_RUN.load(Ordering::Relaxed),
        idle_ns: IDLE_NS.load(Ordering::Relaxed),
    }
}

/// A handle for spawning tasks that may borrow from the enclosing stack
/// frame. Created by [`scope`].
pub struct Scope<'scope> {
    pool: &'static Arc<Pool>,
    group: Arc<TaskGroup>,
    inline: bool,
    _marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Runs `f` on the shared pool (or inline when the pool is single
    /// threaded or we are already on a pool worker). Returns immediately;
    /// completion is awaited when the enclosing [`scope`] call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.inline {
            f();
            return;
        }
        {
            let mut state = sync::lock(&self.group.state);
            state.pending += 1;
        }
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `scope` (below) does not return until `group.pending` is
        // zero, i.e. until this job has run to completion, so every borrow
        // with lifetime 'scope strictly outlives the job's execution.
        #[allow(unsafe_code)]
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool.push(QueuedTask {
            job,
            group: Arc::clone(&self.group),
        });
    }
}

/// Runs `f` with a [`Scope`] whose spawned tasks execute on the shared pool,
/// and waits for all of them before returning. The calling thread helps
/// execute queued tasks while it waits — including, as in rayon, tasks
/// spawned by *other* scopes. Consequently, callers must not hold a
/// `RefCell`/thread-local borrow across a call that may enter `scope`
/// (take the value out of the cell instead; see `hs-tensor`'s
/// `TRANSPOSE_SCRATCH` for the pattern).
///
/// Nested use (a spawned task calling `scope` again) is allowed and runs its
/// tasks inline, which keeps one pool's worth of threads busy no matter how
/// deep subsystems stack their parallelism.
///
/// # Panics
///
/// Re-raises the first panic raised by any spawned task, after every other
/// task in the scope has finished.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let pool = global_pool();
    let inline = pool.workers == 0 || inside_pool();
    let s = Scope {
        pool,
        group: TaskGroup::new(),
        inline,
        _marker: std::marker::PhantomData,
    };
    // The closure may panic *after* spawning tasks that borrow its stack
    // frame; catching here guarantees we still wait for every in-flight task
    // before unwinding past the borrowed data (the soundness invariant the
    // spawn transmute relies on).
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    if !inline {
        // Help drain the queue, then wait for stragglers running on workers.
        while let Some(task) = pool.try_pop() {
            task.run();
        }
        let mut state = sync::lock(&s.group.state);
        while state.pending > 0 {
            state = sync::wait(&s.group.done, state);
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            resume_unwind(payload);
        }
    }
    match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

/// Splits `0..total` into contiguous ranges of at least `min_grain` items
/// and runs `f` on each range in parallel. Falls back to a single inline
/// call when the work is too small to be worth fanning out, the pool is
/// single threaded, or we are already inside a pool task.
pub fn parallel_for<F>(total: usize, min_grain: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if total == 0 {
        return;
    }
    let threads = num_threads();
    let min_grain = min_grain.max(1);
    if threads == 1 || inside_pool() || total <= min_grain {
        f(0..total);
        return;
    }
    let chunks = (total / min_grain).clamp(1, threads);
    let per = total.div_ceil(chunks);
    scope(|s| {
        let mut start = 0;
        while start < total {
            let end = (start + per).min(total);
            let f = &f;
            s.spawn(move || f(start..end));
            start = end;
        }
    });
}

/// Runs `f(chunk_index, chunk)` over `chunk_len`-sized mutable chunks of
/// `data` in parallel (the final chunk may be shorter). The chunks are
/// disjoint, so no synchronisation is needed inside `f`.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    if data.is_empty() {
        return;
    }
    if num_threads() == 1 || inside_pool() || data.len() <= chunk_len {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    scope(|s| {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            s.spawn(move || f(idx, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_every_task() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_tasks_can_borrow_and_mutate_disjoint_slices() {
        let mut data = vec![0usize; 1000];
        scope(|s| {
            for (idx, chunk) in data.chunks_mut(100).enumerate() {
                s.spawn(move || {
                    for v in chunk.iter_mut() {
                        *v = idx;
                    }
                });
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 100);
        }
    }

    #[test]
    fn parallel_for_covers_range_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..537).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(hits.len(), 16, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_chunks_mut_sees_disjoint_chunks() {
        let mut data = vec![0u32; 777];
        parallel_chunks_mut(&mut data, 64, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v = idx as u32 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 64) as u32 + 1);
        }
    }

    #[test]
    fn nested_scopes_run_inline_without_deadlock() {
        let counter = AtomicUsize::new(0);
        scope(|outer| {
            for _ in 0..8 {
                outer.spawn(|| {
                    scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn closure_panic_after_spawn_waits_for_in_flight_tasks() {
        use std::sync::Arc;
        let finished = Arc::new(AtomicUsize::new(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope(|s| {
                for _ in 0..8 {
                    let finished = Arc::clone(&finished);
                    s.spawn(move || {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("scope closure panics after spawning");
            });
        }));
        assert!(result.is_err());
        // every spawned task must have completed before the unwind escaped
        assert_eq!(finished.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn task_panic_propagates_to_scope_caller() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|| panic!("boom"));
                s.spawn(|| {});
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn thread_override_is_reported_and_restorable() {
        let base = num_threads();
        set_num_threads(Some(3));
        assert_eq!(num_threads(), 3);
        set_num_threads(Some(0)); // clamped to at least 1
        assert_eq!(num_threads(), 1);
        set_num_threads(None);
        assert_eq!(num_threads(), base);
    }

    #[test]
    fn pool_stats_count_queued_tasks_and_drain() {
        let before = pool_stats();
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|| std::hint::black_box(()));
            }
        });
        let after = pool_stats();
        assert_eq!(after.workers, before.workers);
        assert_eq!(after.queue_depth, 0, "scope waits for its tasks");
        if after.workers > 0 {
            assert!(
                after.tasks_run >= before.tasks_run + 32,
                "queued tasks must be counted: {before:?} -> {after:?}"
            );
        }
        assert!(after.idle_ns >= before.idle_ns, "idle time is monotonic");
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        parallel_for(0, 8, |_| panic!("must not run"));
        let mut empty: Vec<u8> = Vec::new();
        parallel_chunks_mut(&mut empty, 4, |_, _| panic!("must not run"));
        let done = AtomicUsize::new(0);
        parallel_for(1, 1024, |r| {
            assert_eq!(r, 0..1);
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }
}
