//! Poison-recovering lock helpers shared across the workspace.
//!
//! Every `Mutex`/`Condvar` the serving engine and the FL round loop use
//! guards state that stays valid across a panicking holder: counters,
//! rings, FIFO queues, append-only version maps, update accumulators and
//! single-shot completion slots are all updated in place with no multi-step
//! invariants that a mid-update unwind could tear. A poisoned lock
//! therefore carries no information we need — but calling `.unwrap()` on it
//! would *cascade* one panicked thread into panics in every other thread
//! that touches the same lock, wedging queues, registries and waiting
//! clients. These helpers recover the guard via
//! [`PoisonError::into_inner`] instead, which is what lets a worker
//! supervisor treat a panicked worker as an isolated, restartable event.
//!
//! The helpers live in `hs-parallel` (a leaf of the runtime dependency
//! graph — its only workspace dependency is `hs-obs`, which carries its
//! own copy of this helper for the same reason) so both `hs-serve` and
//! `hs-fl` share one definition.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Consumes `m` and returns its inner value, recovering it from a poisoned
/// lock.
pub fn into_inner<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] that recovers the guard from a poisoned lock.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers the guard from a poisoned lock.
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recovers_after_a_holder_panicked() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned(), "the panic must have poisoned the lock");
        assert_eq!(*lock(&m), 7, "helper still reads the value");
        *lock(&m) = 8;
        assert_eq!(*lock(&m), 8, "helper still writes through");
    }

    #[test]
    fn into_inner_recovers_after_a_holder_panicked() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        let m = Arc::into_inner(m).expect("sole owner");
        assert_eq!(into_inner(m), vec![1, 2, 3]);
    }
}
