//! Dynamic micro-batching: the policy and the batch-collection loop.
//!
//! The economics: one batched forward over `b` single-sample requests costs
//! far less than `b` per-sample forwards (the batched small-GEMM path packs
//! each weight panel once and fills its register strips across samples —
//! measured ~3.6× on the isolated skinny-GEMM shape, see `docs/PERF.md`).
//! The batcher buys that win with bounded extra latency: the first request
//! of a batch waits at most [`BatchPolicy::max_wait`] for companions, and a
//! batch closes early the moment it reaches [`BatchPolicy::max_batch`].
//!
//! `max_batch = 1, max_wait = 0` degenerates to a plain FIFO server — the
//! same-run baseline the serving benches gate the batched configuration
//! against.

use crate::queue::{BoundedQueue, Popped};
use std::time::{Duration, Instant};

/// The knobs of the dynamic batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// A batch closes as soon as it holds this many requests.
    pub max_batch: usize,
    /// A batch closes this long after its first request was dequeued, full
    /// or not (the classic `max_wait_us` knob, held as a `Duration`).
    pub max_wait: Duration,
    /// Adaptive batch sizing: clamp the effective `max_batch` to the queue
    /// depth observed when the batch opens. Under light load the queue
    /// holds the only companions a batch will ever get — waiting
    /// `max_wait` for more just adds latency — while under heavy load the
    /// clamp is a no-op (the queue is deeper than `max_batch`). Off by
    /// default; enable with [`BatchPolicy::adaptive`].
    pub adaptive: bool,
}

impl BatchPolicy {
    /// Creates a policy from the conventional `(max_batch, max_wait_us)`
    /// pair (adaptive sizing off).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize, max_wait_us: u64) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        BatchPolicy {
            max_batch,
            max_wait: Duration::from_micros(max_wait_us),
            adaptive: false,
        }
    }

    /// The no-batching baseline: every request is its own batch.
    pub fn batch_of_one() -> Self {
        BatchPolicy::new(1, 0)
    }

    /// Enables adaptive batch sizing (see [`BatchPolicy::adaptive`]).
    pub fn adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }
}

/// Outcome of one [`collect_batch`] call.
#[derive(Debug)]
pub enum Collected<T> {
    /// A non-empty batch, closed by size or by `max_wait`.
    Batch(Vec<T>),
    /// Nothing arrived within `idle_poll`: the caller can do control work
    /// (hot-swap checks, shutdown checks) and try again.
    Idle,
    /// The queue is closed and fully drained: time to exit.
    Closed,
}

/// Collects the next micro-batch from `queue` under `policy`.
///
/// Blocks up to `idle_poll` for the first request (so callers regain
/// control periodically while idle); once one arrives, keeps popping until
/// the batch is full or `policy.max_wait` has elapsed since the first pop.
/// Requests already waiting in the queue coalesce immediately — the wait
/// only pays when the queue runs dry mid-batch.
pub fn collect_batch<T>(
    queue: &BoundedQueue<T>,
    policy: &BatchPolicy,
    idle_poll: Duration,
) -> Collected<T> {
    let first = match queue.pop_timeout(idle_poll) {
        Popped::Item(item) => item,
        Popped::Empty => return Collected::Idle,
        Popped::Closed => return Collected::Closed,
    };
    // adaptive sizing: the depth at open is everything this batch could
    // coalesce without waiting; don't hold the door for more than that
    let max_batch = if policy.adaptive {
        policy.max_batch.min(queue.len() + 1)
    } else {
        policy.max_batch
    };
    let close_at = Instant::now() + policy.max_wait;
    let mut batch = Vec::with_capacity(max_batch);
    batch.push(first);
    while batch.len() < max_batch {
        let now = Instant::now();
        if now >= close_at {
            break;
        }
        match queue.pop_timeout(close_at - now) {
            Popped::Item(item) => batch.push(item),
            // timeout or closed: ship what we have (a closed queue's
            // remaining items surface on the next collect call)
            Popped::Empty | Popped::Closed => break,
        }
    }
    Collected::Batch(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queued_requests_coalesce_up_to_max_batch() {
        let q = BoundedQueue::new(16);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let policy = BatchPolicy::new(4, 10_000);
        match collect_batch(&q, &policy, Duration::from_millis(1)) {
            Collected::Batch(b) => assert_eq!(b, vec![0, 1, 2, 3]),
            other => panic!("expected a batch, got {other:?}"),
        }
        match collect_batch(&q, &policy, Duration::from_millis(1)) {
            Collected::Batch(b) => assert_eq!(b, vec![4]),
            other => panic!("expected the tail batch, got {other:?}"),
        }
    }

    #[test]
    fn max_wait_bounds_the_batch_building_delay() {
        let q = BoundedQueue::new(16);
        q.try_push(1).unwrap();
        let policy = BatchPolicy::new(8, 2_000); // 2 ms
        let t0 = Instant::now();
        match collect_batch(&q, &policy, Duration::from_millis(1)) {
            Collected::Batch(b) => assert_eq!(b, vec![1]),
            other => panic!("expected a batch, got {other:?}"),
        }
        let waited = t0.elapsed();
        assert!(
            waited >= Duration::from_millis(2) && waited < Duration::from_millis(200),
            "waited {waited:?}, expected ~2ms"
        );
    }

    #[test]
    fn batch_of_one_never_waits_for_companions() {
        let q = BoundedQueue::new(16);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let policy = BatchPolicy::batch_of_one();
        match collect_batch(&q, &policy, Duration::from_millis(1)) {
            Collected::Batch(b) => assert_eq!(b, vec![1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idle_and_closed_are_distinguished() {
        let q: BoundedQueue<i32> = BoundedQueue::new(4);
        let policy = BatchPolicy::new(4, 100);
        assert!(matches!(
            collect_batch(&q, &policy, Duration::from_micros(200)),
            Collected::Idle
        ));
        q.close();
        assert!(matches!(
            collect_batch(&q, &policy, Duration::from_micros(200)),
            Collected::Closed
        ));
    }

    #[test]
    #[should_panic(expected = "max_batch must be positive")]
    fn zero_max_batch_is_rejected() {
        let _ = BatchPolicy::new(0, 100);
    }

    #[test]
    fn adaptive_policy_closes_at_observed_queue_depth() {
        // two queued requests, max_batch 8: the adaptive batch ships both
        // immediately instead of waiting max_wait for six more
        let q = BoundedQueue::new(16);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let policy = BatchPolicy::new(8, 50_000).adaptive(); // 50 ms
        let t0 = Instant::now();
        match collect_batch(&q, &policy, Duration::from_millis(1)) {
            Collected::Batch(b) => assert_eq!(b, vec![1, 2]),
            other => panic!("expected a batch, got {other:?}"),
        }
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "adaptive batch should not have waited out max_wait"
        );
    }

    #[test]
    fn adaptive_policy_still_honours_max_batch_under_load() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let policy = BatchPolicy::new(4, 10_000).adaptive();
        match collect_batch(&q, &policy, Duration::from_millis(1)) {
            Collected::Batch(b) => assert_eq!(b, vec![0, 1, 2, 3]),
            other => panic!("expected a full batch, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_is_off_by_default() {
        let policy = BatchPolicy::new(4, 100);
        assert!(!policy.adaptive);
        assert!(BatchPolicy::new(4, 100).adaptive().adaptive);
    }
}
