//! # hs-serve
//!
//! A dynamic micro-batching inference server over the `hs-nn` model zoo —
//! the subsystem that turns the repository's fast kernels into a *system*:
//! queueing, replication, versioning and backpressure in one place.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──► ServeClient::submit ──► BoundedQueue (admission control)
//!                                          │  try_push: full → Backpressure
//!                                          ▼
//!                         worker threads (one fused Network replica each)
//!                           1. poll ModelRegistry, hot-swap between batches
//!                           2. collect_batch: max_batch / max_wait_us
//!                           3. drop expired requests (deadlines)
//!                           4. one batched Network::infer forward
//!                           5. route logits rows via completion slots
//!                                          │
//!  clients ◄── Pending::wait ◄─────────────┘      ServerMetrics: p50/p95/p99,
//!                                                 batch-size histogram
//! ```
//!
//! Single-sample requests enter a bounded MPMC queue; a batcher coalesces
//! them under a [`BatchPolicy`] (`max_batch`, `max_wait_us`) into **one**
//! batched forward on a per-worker replica. That forward is where the
//! repository's performance stack pays off: the replicas are fused
//! (conv→BN→activation epilogues) and planned (allocation-free warm
//! forwards), and the batched small-GEMM path packs each weight panel once
//! while several samples' skinny columns fill the register strips — the
//! measured economics the batcher exists to exploit (see `docs/PERF.md` and
//! `docs/SERVING.md`).
//!
//! Model weights come from the [`ModelRegistry`]: named, versioned
//! checkpoint blobs (the `hs-nn` binary checkpoint format) published by a
//! training loop — e.g. `hs-fl`'s `run_with_checkpoints` hook — and
//! atomically hot-swapped into the workers between batches, so a simulated
//! FL run can keep improving the global model *while it is being served*.
//!
//! ## Quick start
//!
//! ```
//! use hs_serve::{BatchPolicy, ModelRegistry, Server, ServerConfig};
//! use hs_nn::{Linear, Network, Sequential};
//! use hs_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::sync::Arc;
//!
//! // any constructor that rebuilds the same architecture works as a factory
//! let replica = || {
//!     let mut rng = StdRng::seed_from_u64(0);
//!     Network::new(Sequential::new(vec![Box::new(Linear::new(4, 3, &mut rng))]))
//! };
//!
//! // publish a "trained" model into the registry…
//! let registry = Arc::new(ModelRegistry::new());
//! registry.publish("demo", &mut replica());
//!
//! // …serve it, and drive a request through the batching path
//! let server = Server::start(
//!     Arc::clone(&registry),
//!     "demo",
//!     replica,
//!     &[4],
//!     ServerConfig::new(1, 16, BatchPolicy::new(4, 100)),
//! )
//! .unwrap();
//! let client = server.client();
//! let response = client.infer(Tensor::ones(&[4]), None).unwrap();
//! assert_eq!(response.logits.len(), 3);
//! server.shutdown();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod batcher;
mod metrics;
mod queue;
mod registry;
mod server;
mod sync;

pub use batcher::{collect_batch, BatchPolicy, Collected};
pub use metrics::{BatchBucket, MetricsSnapshot, ServerMetrics};
pub use queue::{BoundedQueue, Popped, PushError};
pub use registry::{ModelRegistry, ModelVersion};
pub use server::{
    BrownoutConfig, Pending, Response, ServeClient, ServeError, Server, ServerConfig, StartError,
};
