//! The serving metrics recorder: request latency percentiles, the
//! batch-size histogram (the direct read-out of how well the batcher is
//! coalescing), and admission/expiry counters.
//!
//! Recording is cheap (two atomics or one short mutex hold per event);
//! aggregation happens in [`ServerMetrics::snapshot`], which sorts a copy
//! of the latencies. [`MetricsSnapshot`] derives `serde::ToJson`, so the
//! load-generator harness dumps it straight into the experiment JSON.

use crate::sync::lock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One bar of the batch-size histogram.
#[derive(Debug, Clone, PartialEq, Eq, serde::ToJson)]
pub struct BatchBucket {
    /// Batch size.
    pub batch: usize,
    /// Number of batches executed at that size.
    pub count: u64,
}

/// A point-in-time aggregation of a server's metrics. Latency statistics
/// (`p50_us`..`mean_us`) cover the most recent `LATENCY_WINDOW` (65 536)
/// completions; the counters cover the server's whole lifetime.
#[derive(Debug, Clone, serde::ToJson)]
pub struct MetricsSnapshot {
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests rejected at admission (queue full → `Backpressure`).
    pub rejected: u64,
    /// Requests dropped because their deadline passed before execution.
    pub expired: u64,
    /// Requests shed by brownout mode (sustained overload, low deadline
    /// slack → `ServeError::Shed`).
    pub shed: u64,
    /// Median completion latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile completion latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile completion latency, microseconds.
    pub p99_us: u64,
    /// Worst observed completion latency, microseconds.
    pub max_us: u64,
    /// Mean completion latency, microseconds.
    pub mean_us: f64,
    /// Mean executed batch size: completed requests divided by executed
    /// batches (how full the batcher ran on average).
    pub mean_batch: f64,
    /// Worker threads that died to a panic (each aborts its in-flight
    /// batch; the supervisor respawns the worker).
    pub worker_panics: u64,
    /// Worker respawns performed by the supervisor.
    pub worker_restarts: u64,
    /// Times the server entered brownout mode.
    pub brownout_entries: u64,
    /// Executed batch sizes and their counts, ascending.
    pub batch_histogram: Vec<BatchBucket>,
}

/// Cap on retained latency samples: a ring of the most recent completions,
/// so percentiles track the live distribution while a long-running server's
/// memory stays bounded (the total count lives in the `completed` counter).
const LATENCY_WINDOW: usize = 65_536;

#[derive(Default)]
struct Recorded {
    /// Ring buffer of the most recent [`LATENCY_WINDOW`] latencies.
    latencies_us: Vec<u64>,
    /// Ring insertion index (next slot to overwrite once full).
    next: usize,
    /// `batch_counts[size]` = number of batches executed with that many
    /// requests (index 0 unused).
    batch_counts: Vec<u64>,
}

/// The shared recorder every worker and client reports into.
#[derive(Default)]
pub struct ServerMetrics {
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    shed: AtomicU64,
    worker_panics: AtomicU64,
    worker_restarts: AtomicU64,
    brownout_entries: AtomicU64,
    recorded: Mutex<Recorded>,
}

impl ServerMetrics {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one successfully completed request. Latency percentiles are
    /// computed over the most recent [`LATENCY_WINDOW`] completions.
    pub fn record_completion(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let mut rec = lock(&self.recorded);
        if rec.latencies_us.len() < LATENCY_WINDOW {
            rec.latencies_us.push(us);
        } else {
            let slot = rec.next;
            rec.latencies_us[slot] = us;
            rec.next = (slot + 1) % LATENCY_WINDOW;
        }
    }

    /// Records one admission rejection (backpressure).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one deadline expiry.
    pub fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one brownout shed.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker death by panic.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one supervisor worker respawn.
    pub fn record_worker_restart(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one transition into brownout mode.
    pub fn record_brownout_entry(&self) {
        self.brownout_entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the size of one executed batch.
    pub fn record_batch(&self, size: usize) {
        let mut rec = lock(&self.recorded);
        if rec.batch_counts.len() <= size {
            rec.batch_counts.resize(size + 1, 0);
        }
        rec.batch_counts[size] += 1;
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests rejected at admission so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests expired before execution so far.
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Requests shed by brownout mode so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Aggregates everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let rec = lock(&self.recorded);
        let mut sorted = rec.latencies_us.clone();
        sorted.sort_unstable();
        // nearest-rank percentile: the smallest value with at least q of
        // the distribution at or below it
        let pct = |q: f64| -> u64 {
            if sorted.is_empty() {
                0
            } else {
                let rank = (q * sorted.len() as f64).ceil() as usize;
                sorted[rank.clamp(1, sorted.len()) - 1]
            }
        };
        let mean_us = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<u64>() as f64 / sorted.len() as f64
        };
        let batch_histogram: Vec<BatchBucket> = rec
            .batch_counts
            .iter()
            .enumerate()
            .filter(|&(size, &count)| size > 0 && count > 0)
            .map(|(batch, &count)| BatchBucket { batch, count })
            .collect();
        let (requests, batches): (u64, u64) = batch_histogram.iter().fold((0, 0), |(r, n), b| {
            (r + b.count * b.batch as u64, n + b.count)
        });
        let mean_batch = if batches == 0 {
            0.0
        } else {
            requests as f64 / batches as f64
        };
        MetricsSnapshot {
            completed: self.completed(),
            rejected: self.rejected(),
            expired: self.expired(),
            shed: self.shed(),
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: sorted.last().copied().unwrap_or(0),
            mean_us,
            mean_batch,
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            brownout_entries: self.brownout_entries.load(Ordering::Relaxed),
            batch_histogram,
        }
    }

    /// Clears every counter and series (between sweep configurations).
    pub fn reset(&self) {
        self.completed.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.expired.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
        self.worker_panics.store(0, Ordering::Relaxed);
        self.worker_restarts.store(0, Ordering::Relaxed);
        self.brownout_entries.store(0, Ordering::Relaxed);
        let mut rec = lock(&self.recorded);
        rec.latencies_us.clear();
        rec.next = 0;
        rec.batch_counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_histogram_aggregate_correctly() {
        let m = ServerMetrics::new();
        for us in 1..=100u64 {
            m.record_completion(Duration::from_micros(us));
        }
        m.record_batch(4);
        m.record_batch(4);
        m.record_batch(1);
        m.record_rejected();
        m.record_expired();
        let snap = m.snapshot();
        assert_eq!(snap.completed, 100);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.p50_us, 50);
        assert_eq!(snap.p95_us, 95);
        assert_eq!(snap.p99_us, 99);
        assert_eq!(snap.max_us, 100);
        assert!((snap.mean_us - 50.5).abs() < 1e-9);
        assert_eq!(
            snap.batch_histogram,
            vec![
                BatchBucket { batch: 1, count: 1 },
                BatchBucket { batch: 4, count: 2 }
            ]
        );
        assert!((snap.mean_batch - 3.0).abs() < 1e-9); // 9 requests / 3 batches
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        // the empty-histogram guard: percentiles of zero completions must
        // come out as 0, never NaN and never a panic
        let snap = ServerMetrics::new().snapshot();
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.p95_us, 0);
        assert_eq!(snap.p99_us, 0);
        assert_eq!(snap.max_us, 0);
        assert_eq!(snap.mean_us, 0.0);
        assert!(!snap.mean_us.is_nan());
        assert_eq!(snap.mean_batch, 0.0);
        assert!(!snap.mean_batch.is_nan());
        assert!(snap.batch_histogram.is_empty());
    }

    #[test]
    fn empty_snapshot_serialises_without_nan() {
        let text = serde::json::to_string(&ServerMetrics::new().snapshot());
        assert!(!text.contains("NaN") && !text.contains("nan"), "{text}");
        assert!(text.contains("\"p99_us\":0"));
        assert!(text.contains("\"mean_us\":0"));
    }

    #[test]
    fn robustness_counters_record_and_reset() {
        let m = ServerMetrics::new();
        m.record_shed();
        m.record_shed();
        m.record_worker_panic();
        m.record_worker_restart();
        m.record_brownout_entry();
        let snap = m.snapshot();
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.worker_restarts, 1);
        assert_eq!(snap.brownout_entries, 1);
        m.reset();
        let snap = m.snapshot();
        assert_eq!(
            (
                snap.shed,
                snap.worker_panics,
                snap.worker_restarts,
                snap.brownout_entries
            ),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn reset_clears_everything() {
        let m = ServerMetrics::new();
        m.record_completion(Duration::from_micros(10));
        m.record_batch(2);
        m.reset();
        let snap = m.snapshot();
        assert_eq!(snap.completed, 0);
        assert!(snap.batch_histogram.is_empty());
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let m = ServerMetrics::new();
        m.record_completion(Duration::from_micros(5));
        m.record_batch(1);
        let text = serde::json::to_string(&m.snapshot());
        assert!(text.contains("\"p99_us\":5"));
        assert!(text.contains("\"batch_histogram\":[{\"batch\":1,\"count\":1}]"));
    }
}
