//! The serving metrics recorder: request latency percentiles, queue-wait
//! percentiles, the batch-size histogram (the direct read-out of how well
//! the batcher is coalescing), and admission/expiry counters.
//!
//! Latency and queue-wait series are `hs_obs::Histogram`s — streaming
//! log-bucketed histograms with O(1) wait-free recording and quantile
//! error bounded by one sub-bucket (≤ 1/16 of the value). This replaced
//! the earlier fixed 65 536-sample ring that copied and sorted on every
//! snapshot: recording no longer takes a lock, snapshots are O(buckets)
//! instead of O(n·log n), and the statistics cover every completion since
//! the last [`ServerMetrics::reset`] rather than a recency window.
//! Percentiles use the histogram's upper-bound convention, so they never
//! under-report (see `crates/obs` and `docs/OBSERVABILITY.md`).
//!
//! [`MetricsSnapshot`] derives `serde::ToJson`, so the load-generator
//! harness dumps it straight into the experiment JSON.

use crate::sync::lock;
use hs_obs::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One bar of the batch-size histogram.
#[derive(Debug, Clone, PartialEq, Eq, serde::ToJson)]
pub struct BatchBucket {
    /// Batch size.
    pub batch: usize,
    /// Number of batches executed at that size.
    pub count: u64,
}

/// A point-in-time aggregation of a server's metrics. Latency and
/// queue-wait statistics are streaming-histogram estimates over every
/// completion since the last reset (percentile error at most one bucket:
/// ≤ 1/16 of the value); counters cover the same period.
#[derive(Debug, Clone, serde::ToJson)]
pub struct MetricsSnapshot {
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests rejected at admission (queue full → `Backpressure`).
    pub rejected: u64,
    /// Requests dropped because their deadline passed before execution.
    pub expired: u64,
    /// Requests shed by brownout mode (sustained overload, low deadline
    /// slack → `ServeError::Shed`).
    pub shed: u64,
    /// Median completion latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile completion latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile completion latency, microseconds.
    pub p99_us: u64,
    /// Worst observed completion latency, microseconds (exact).
    pub max_us: u64,
    /// Mean completion latency, microseconds (exact: sum / count).
    pub mean_us: f64,
    /// Median admission→batch-open queue wait, microseconds. Splitting
    /// queue wait from total latency is what lets backpressure tuning see
    /// whether time is lost waiting or executing.
    pub queue_p50_us: u64,
    /// 95th-percentile queue wait, microseconds.
    pub queue_p95_us: u64,
    /// 99th-percentile queue wait, microseconds.
    pub queue_p99_us: u64,
    /// Mean executed batch size: completed requests divided by executed
    /// batches (how full the batcher ran on average).
    pub mean_batch: f64,
    /// Worker threads that died to a panic (each aborts its in-flight
    /// batch; the supervisor respawns the worker).
    pub worker_panics: u64,
    /// Worker respawns performed by the supervisor.
    pub worker_restarts: u64,
    /// Times the server entered brownout mode.
    pub brownout_entries: u64,
    /// Executed batch sizes and their counts, ascending.
    pub batch_histogram: Vec<BatchBucket>,
}

/// The shared recorder every worker and client reports into.
#[derive(Default)]
pub struct ServerMetrics {
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    shed: AtomicU64,
    worker_panics: AtomicU64,
    worker_restarts: AtomicU64,
    brownout_entries: AtomicU64,
    /// End-to-end completion latencies, microseconds.
    latency_us: Histogram,
    /// Admission→batch-open waits, microseconds.
    queue_wait_us: Histogram,
    /// `batch_counts[size]` = number of batches executed with that many
    /// requests (index 0 unused).
    batch_counts: Mutex<Vec<u64>>,
}

fn as_micros(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

impl ServerMetrics {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one successfully completed request. Lock-free.
    pub fn record_completion(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency_us.record(as_micros(latency));
    }

    /// Records one request's admission→batch-open queue wait. Lock-free.
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait_us.record(as_micros(wait));
    }

    /// Records one admission rejection (backpressure).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one deadline expiry.
    pub fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one brownout shed.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker death by panic.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one supervisor worker respawn.
    pub fn record_worker_restart(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one transition into brownout mode.
    pub fn record_brownout_entry(&self) {
        self.brownout_entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the size of one executed batch.
    pub fn record_batch(&self, size: usize) {
        let mut counts = lock(&self.batch_counts);
        if counts.len() <= size {
            counts.resize(size + 1, 0);
        }
        counts[size] += 1;
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests rejected at admission so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests expired before execution so far.
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Requests shed by brownout mode so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Aggregates everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let lat = self.latency_us.summary();
        let queue = self.queue_wait_us.summary();
        let batch_histogram: Vec<BatchBucket> = lock(&self.batch_counts)
            .iter()
            .enumerate()
            .filter(|&(size, &count)| size > 0 && count > 0)
            .map(|(batch, &count)| BatchBucket { batch, count })
            .collect();
        let (requests, batches): (u64, u64) = batch_histogram.iter().fold((0, 0), |(r, n), b| {
            (r + b.count * b.batch as u64, n + b.count)
        });
        let mean_batch = if batches == 0 {
            0.0
        } else {
            requests as f64 / batches as f64
        };
        MetricsSnapshot {
            completed: self.completed(),
            rejected: self.rejected(),
            expired: self.expired(),
            shed: self.shed(),
            p50_us: lat.p50,
            p95_us: lat.p95,
            p99_us: lat.p99,
            max_us: lat.max,
            mean_us: self.latency_us.mean(),
            queue_p50_us: queue.p50,
            queue_p95_us: queue.p95,
            queue_p99_us: queue.p99,
            mean_batch,
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            brownout_entries: self.brownout_entries.load(Ordering::Relaxed),
            batch_histogram,
        }
    }

    /// Clears every counter and series (between sweep configurations).
    pub fn reset(&self) {
        self.completed.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.expired.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
        self.worker_panics.store(0, Ordering::Relaxed);
        self.worker_restarts.store(0, Ordering::Relaxed);
        self.brownout_entries.store(0, Ordering::Relaxed);
        self.latency_us.reset();
        self.queue_wait_us.reset();
        lock(&self.batch_counts).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_histogram_aggregate_correctly() {
        let m = ServerMetrics::new();
        for us in 1..=100u64 {
            m.record_completion(Duration::from_micros(us));
        }
        m.record_batch(4);
        m.record_batch(4);
        m.record_batch(1);
        m.record_rejected();
        m.record_expired();
        let snap = m.snapshot();
        assert_eq!(snap.completed, 100);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.expired, 1);
        // Streaming-histogram estimates, upper-bound convention: the
        // rank-50 sample (50 µs) reports its bucket's upper bound 51; the
        // p95/p99 buckets' upper bounds coincide with the exact values.
        assert_eq!(snap.p50_us, 51);
        assert_eq!(snap.p95_us, 95);
        assert_eq!(snap.p99_us, 99);
        assert_eq!(snap.max_us, 100);
        assert!((snap.mean_us - 50.5).abs() < 1e-9);
        assert_eq!(
            snap.batch_histogram,
            vec![
                BatchBucket { batch: 1, count: 1 },
                BatchBucket { batch: 4, count: 2 }
            ]
        );
        assert!((snap.mean_batch - 3.0).abs() < 1e-9); // 9 requests / 3 batches
    }

    /// The streaming estimate may only sit above the exact nearest-rank
    /// percentile, and by at most its bucket's width (≤ value/16).
    #[test]
    fn percentile_error_vs_exact_sort_is_within_one_bucket() {
        let m = ServerMetrics::new();
        // Deterministic skewed mix spanning several octaves, like a real
        // latency distribution (fast hits + heavy tail).
        let mut samples: Vec<u64> = Vec::new();
        let mut x: u64 = 0x2545f4914f6cdd1d;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 20 + (x % 300) + if x.is_multiple_of(11) { x % 40_000 } else { 0 };
            samples.push(v);
            m.record_completion(Duration::from_micros(v));
        }
        samples.sort_unstable();
        let exact = |q: f64| -> u64 {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1]
        };
        let snap = m.snapshot();
        for (est, q) in [
            (snap.p50_us, 0.50),
            (snap.p95_us, 0.95),
            (snap.p99_us, 0.99),
        ] {
            let e = exact(q);
            assert!(est >= e, "p{q}: estimate {est} under exact {e}");
            assert!(
                est - e <= (e / 16).max(1),
                "p{q}: estimate {est} more than one bucket above exact {e}"
            );
        }
        assert_eq!(snap.max_us, *samples.last().unwrap(), "max is exact");
    }

    #[test]
    fn queue_wait_percentiles_are_separate_from_latency() {
        let m = ServerMetrics::new();
        for us in 1..=100u64 {
            m.record_completion(Duration::from_micros(us * 10));
            m.record_queue_wait(Duration::from_micros(us));
        }
        let snap = m.snapshot();
        assert_eq!(snap.queue_p50_us, 51);
        assert_eq!(snap.queue_p95_us, 95);
        assert_eq!(snap.queue_p99_us, 99);
        assert!(snap.p50_us > snap.queue_p50_us, "series must not mix");
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        // the empty-histogram guard: percentiles of zero completions must
        // come out as 0, never NaN and never a panic
        let snap = ServerMetrics::new().snapshot();
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.p95_us, 0);
        assert_eq!(snap.p99_us, 0);
        assert_eq!(snap.max_us, 0);
        assert_eq!(snap.queue_p50_us, 0);
        assert_eq!(snap.queue_p99_us, 0);
        assert_eq!(snap.mean_us, 0.0);
        assert!(!snap.mean_us.is_nan());
        assert_eq!(snap.mean_batch, 0.0);
        assert!(!snap.mean_batch.is_nan());
        assert!(snap.batch_histogram.is_empty());
    }

    #[test]
    fn empty_snapshot_serialises_without_nan() {
        let text = serde::json::to_string(&ServerMetrics::new().snapshot());
        assert!(!text.contains("NaN") && !text.contains("nan"), "{text}");
        assert!(text.contains("\"p99_us\":0"));
        assert!(text.contains("\"mean_us\":0"));
        assert!(text.contains("\"queue_p99_us\":0"));
    }

    #[test]
    fn robustness_counters_record_and_reset() {
        let m = ServerMetrics::new();
        m.record_shed();
        m.record_shed();
        m.record_worker_panic();
        m.record_worker_restart();
        m.record_brownout_entry();
        let snap = m.snapshot();
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.worker_restarts, 1);
        assert_eq!(snap.brownout_entries, 1);
        m.reset();
        let snap = m.snapshot();
        assert_eq!(
            (
                snap.shed,
                snap.worker_panics,
                snap.worker_restarts,
                snap.brownout_entries
            ),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn reset_clears_everything() {
        let m = ServerMetrics::new();
        m.record_completion(Duration::from_micros(10));
        m.record_queue_wait(Duration::from_micros(3));
        m.record_batch(2);
        m.reset();
        let snap = m.snapshot();
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.p99_us, 0);
        assert_eq!(snap.queue_p99_us, 0);
        assert!(snap.batch_histogram.is_empty());
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let m = ServerMetrics::new();
        m.record_completion(Duration::from_micros(5));
        m.record_batch(1);
        let text = serde::json::to_string(&m.snapshot());
        assert!(text.contains("\"p99_us\":5"));
        assert!(text.contains("\"batch_histogram\":[{\"batch\":1,\"count\":1}]"));
    }
}
