//! The bounded MPMC admission queue at the front of the server.
//!
//! Admission control happens here: producers ([`crate::ServeClient`]) use
//! the non-blocking [`BoundedQueue::try_push`], which fails immediately with
//! the rejected item when the queue is full — the server turns that into a
//! `Backpressure` error instead of letting an overload grow an unbounded
//! backlog (and letting every queued request blow through its deadline).
//! Consumers (batcher workers) block with a timeout so they can interleave
//! control work (hot-swap checks, shutdown) with popping.
//!
//! Built on `Mutex` + `Condvar` like the `hs_parallel` pool — the build
//! environment has no crates registry, so no crossbeam.

use crate::sync::{lock, wait_timeout};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why [`BoundedQueue::try_push`] rejected an item. Carries the item back
/// so the caller can complete it with an error (or retry).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue holds `capacity` items: admission control triggered.
    Full(T),
    /// The queue was closed (server shutting down).
    Closed(T),
}

/// Outcome of a [`BoundedQueue::pop_timeout`].
#[derive(Debug)]
pub enum Popped<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue still empty (and open).
    Empty,
    /// The queue is closed **and** drained: no item will ever arrive again.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity queue rejects every
    /// request, which is never what a server configuration means).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking; fails with the item when the queue is at
    /// capacity (backpressure) or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = lock(&self.state);
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking up to `timeout` for one to
    /// arrive. A closed queue keeps yielding its remaining items
    /// ([`Popped::Item`]) until drained, then reports [`Popped::Closed`] —
    /// so shutdown never strands accepted requests.
    pub fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Popped::Item(item);
            }
            if state.closed {
                return Popped::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Popped::Empty;
            }
            let (next, timed_out) = wait_timeout(&self.not_empty, state, deadline - now);
            state = next;
            if timed_out.timed_out() && state.items.is_empty() {
                return if state.closed {
                    Popped::Closed
                } else {
                    Popped::Empty
                };
            }
        }
    }

    /// Closes the queue: every future push fails, every blocked consumer
    /// wakes, and remaining items stay poppable until drained.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_backpressure() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert!(matches!(q.pop_timeout(Duration::ZERO), Popped::Item(1)));
        q.try_push(3).unwrap();
        assert!(matches!(q.pop_timeout(Duration::ZERO), Popped::Item(2)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Popped::Item(3)));
        assert!(matches!(
            q.pop_timeout(Duration::from_micros(100)),
            Popped::Empty
        ));
    }

    #[test]
    fn close_rejects_pushes_but_drains_items() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Popped::Item(1)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Popped::Closed));
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_on_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match q2.pop_timeout(Duration::from_secs(5)) {
                    Popped::Item(v) => got.push(v),
                    Popped::Closed => return got,
                    Popped::Empty => panic!("5s timeout should not elapse"),
                }
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        q.try_push(7).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![7]);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(64));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let v = p * 1000 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full(_)) => std::thread::yield_now(),
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match q.pop_timeout(Duration::from_millis(200)) {
                            Popped::Item(v) => got.push(v),
                            Popped::Closed => return got,
                            Popped::Empty => return got,
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<i32> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<i32>::new(0);
    }
}
