//! The model registry: named, versioned checkpoint blobs and the atomic
//! hot-swap contract between a training loop and the serving workers.
//!
//! A publisher (e.g. the FL simulation via its `checkpoint_every` hook)
//! calls [`ModelRegistry::publish`] with a fresh global model; the registry
//! serialises it to checkpoint bytes, assigns the next version number and
//! appends it under the model's name. Serving workers poll
//! [`ModelRegistry::latest`] **between batches** and reload their replica
//! when the version moved — each worker's weights therefore always come
//! from exactly one published version, and an in-flight batch runs to
//! completion on the version it started with (no torn weights; pinned by
//! the hot-swap atomicity test in `hs-serve`).
//!
//! Versions are retained (bounded by [`ModelRegistry::retain`]) so a sweep
//! can pin, compare or roll back to a specific version.

use crate::sync::lock;
use hs_nn::Network;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One published model version: an immutable checkpoint blob plus its
/// identity. Shared by `Arc`, so publishing never copies weights into
/// workers — they deserialise straight from the shared blob.
#[derive(Debug)]
pub struct ModelVersion {
    /// Registry name the version was published under.
    pub name: String,
    /// Process-wide monotonic version number (1-based).
    pub version: u64,
    /// Checkpoint bytes (see `hs_nn`'s checkpoint format docs).
    pub bytes: Vec<u8>,
}

/// A named, versioned store of checkpoint blobs with atomic publication.
#[derive(Default)]
pub struct ModelRegistry {
    models: Mutex<HashMap<String, Vec<Arc<ModelVersion>>>>,
    next_version: AtomicU64,
    /// Maximum versions kept per name (oldest evicted first); 0 = unlimited.
    retain: usize,
}

impl ModelRegistry {
    /// Creates an empty registry keeping every published version.
    pub fn new() -> Self {
        ModelRegistry {
            models: Mutex::new(HashMap::new()),
            next_version: AtomicU64::new(1),
            retain: 0,
        }
    }

    /// Creates a registry keeping at most `retain` versions per model name
    /// (0 = unlimited). The latest version is never evicted.
    pub fn with_retention(retain: usize) -> Self {
        ModelRegistry {
            retain,
            ..ModelRegistry::new()
        }
    }

    /// Publishes pre-serialised checkpoint bytes under `name`, returning
    /// the assigned version number. The append is atomic: readers see
    /// either the registry before or after this version, never a partially
    /// published blob.
    pub fn publish_bytes(&self, name: &str, bytes: Vec<u8>) -> u64 {
        let mut models = lock(&self.models);
        // version assignment happens INSIDE the critical section: assigning
        // outside would let two concurrent publishers append out of order,
        // regressing latest() to the older model (and letting retention
        // evict the newer one)
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(ModelVersion {
            name: name.to_string(),
            version,
            bytes,
        });
        let versions = models.entry(name.to_string()).or_default();
        versions.push(entry);
        if self.retain > 0 && versions.len() > self.retain {
            let drop_n = versions.len() - self.retain;
            versions.drain(..drop_n);
        }
        version
    }

    /// Serialises `net` to checkpoint bytes and publishes them under
    /// `name`, returning the assigned version number.
    pub fn publish(&self, name: &str, net: &mut Network) -> u64 {
        self.publish_bytes(name, net.to_checkpoint_bytes())
    }

    /// The most recently published version under `name`, if any.
    pub fn latest(&self, name: &str) -> Option<Arc<ModelVersion>> {
        lock(&self.models).get(name).and_then(|v| v.last()).cloned()
    }

    /// The most recent version *number* under `name` — the cheap check a
    /// worker runs between batches to decide whether to hot-swap.
    pub fn latest_version(&self, name: &str) -> Option<u64> {
        self.latest(name).map(|m| m.version)
    }

    /// A specific retained version under `name`.
    pub fn get(&self, name: &str, version: u64) -> Option<Arc<ModelVersion>> {
        lock(&self.models)
            .get(name)
            .and_then(|v| v.iter().find(|m| m.version == version))
            .cloned()
    }

    /// Retained version numbers under `name`, ascending.
    pub fn versions(&self, name: &str) -> Vec<u64> {
        lock(&self.models)
            .get(name)
            .map(|v| v.iter().map(|m| m.version).collect())
            .unwrap_or_default()
    }

    /// Every model name with at least one retained version, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.models).keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::{Linear, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(Sequential::new(vec![Box::new(Linear::new(4, 3, &mut rng))]))
    }

    #[test]
    fn publish_assigns_monotonic_versions_and_latest_tracks() {
        let reg = ModelRegistry::new();
        let v1 = reg.publish("cnn", &mut tiny_net(1));
        let v2 = reg.publish("cnn", &mut tiny_net(2));
        let v3 = reg.publish("other", &mut tiny_net(3));
        assert!(v1 < v2 && v2 < v3);
        assert_eq!(reg.latest_version("cnn"), Some(v2));
        assert_eq!(reg.latest_version("other"), Some(v3));
        assert_eq!(reg.latest_version("missing"), None);
        assert_eq!(reg.versions("cnn"), vec![v1, v2]);
        assert_eq!(reg.names(), vec!["cnn".to_string(), "other".to_string()]);
    }

    #[test]
    fn published_bytes_load_back_into_a_replica() {
        let reg = ModelRegistry::new();
        let mut original = tiny_net(7);
        reg.publish("m", &mut original);
        let latest = reg.latest("m").unwrap();
        let mut replica = tiny_net(8);
        replica.load_checkpoint_bytes(&latest.bytes).unwrap();
        assert_eq!(replica.weights(), original.weights());
    }

    #[test]
    fn retention_evicts_oldest_but_keeps_latest() {
        let reg = ModelRegistry::with_retention(2);
        let _v1 = reg.publish("m", &mut tiny_net(1));
        let v2 = reg.publish("m", &mut tiny_net(2));
        let v3 = reg.publish("m", &mut tiny_net(3));
        assert_eq!(reg.versions("m"), vec![v2, v3]);
        assert_eq!(reg.latest_version("m"), Some(v3));
    }

    #[test]
    fn concurrent_publishers_never_tear_the_latest_pointer() {
        let reg = Arc::new(ModelRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..10 {
                        reg.publish("m", &mut tiny_net(t * 100 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.versions("m").len(), 40);
        // versions are strictly ascending in the retained list
        let versions = reg.versions("m");
        assert!(versions.windows(2).all(|w| w[0] < w[1]));
    }
}
