//! The serving engine: admission, micro-batched execution on a pool of
//! per-worker model replicas, and response routing.
//!
//! Request lifecycle:
//!
//! 1. A [`ServeClient`] validates the sample shape and [`BoundedQueue::
//!    try_push`]es a request carrying its completion [`Pending`] slot —
//!    a full queue rejects immediately with [`ServeError::Backpressure`].
//! 2. A worker thread collects a micro-batch under the
//!    [`crate::BatchPolicy`], drops requests whose deadline already passed
//!    ([`ServeError::DeadlineExceeded`]), stacks the survivors into one
//!    `[b, ...]` tensor and runs **one** batched forward on its own fused +
//!    planned [`Network`] replica (warm steady-state forwards allocate
//!    nothing in the planned layers, and skinny per-sample GEMMs coalesce
//!    across the batch — the whole point of batching here).
//! 3. Each request's logits row is routed back through its completion slot;
//!    latency and batch-size metrics are recorded.
//!
//! Between batches every worker polls the [`ModelRegistry`] and atomically
//! hot-swaps its replica when a newer version of the served model was
//! published — an in-flight batch always runs on exactly one version.

use crate::batcher::{collect_batch, BatchPolicy, Collected};
use crate::metrics::{MetricsSnapshot, ServerMetrics};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::ModelRegistry;
use hs_nn::{CheckpointError, Network};
use hs_tensor::Tensor;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a request was not served.
#[derive(Debug)]
pub enum ServeError {
    /// The admission queue is full: shed load or retry later.
    Backpressure {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The request's deadline passed before a worker executed it.
    DeadlineExceeded {
        /// How long the request had been waiting when it was dropped.
        waited: Duration,
    },
    /// The sample's shape does not match the model the server was built
    /// for.
    ShapeMismatch {
        /// Per-sample input shape the server expects.
        expected: Vec<usize>,
        /// Shape of the rejected sample.
        got: Vec<usize>,
    },
    /// The server is shutting down (or already shut down).
    Shutdown,
    /// The worker executing this request's batch panicked; the request was
    /// aborted (the worker survives and keeps serving later batches).
    WorkerPanicked,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Backpressure { capacity } => write!(
                f,
                "request rejected: admission queue is at capacity ({capacity}) — the server \
                 is overloaded; retry with backoff or raise queue_capacity/workers"
            ),
            ServeError::DeadlineExceeded { waited } => write!(
                f,
                "request expired after waiting {waited:?}: its deadline passed before a \
                 worker could execute it"
            ),
            ServeError::ShapeMismatch { expected, got } => write!(
                f,
                "sample shape {got:?} does not match the served model's input {expected:?}"
            ),
            ServeError::Shutdown => write!(f, "server is shut down"),
            ServeError::WorkerPanicked => write!(
                f,
                "internal error: the worker executing this request's batch panicked; \
                 the request was aborted"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Why [`Server::start`] refused to start.
#[derive(Debug)]
pub enum StartError {
    /// No version of the requested model is published in the registry.
    UnknownModel {
        /// The requested name.
        name: String,
        /// Names that are published.
        available: Vec<String>,
    },
    /// The latest published checkpoint does not load into the replica the
    /// factory builds.
    Checkpoint(CheckpointError),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::UnknownModel { name, available } => write!(
                f,
                "model {name:?} has no published version in the registry (available: \
                 {available:?}); publish a checkpoint before starting the server"
            ),
            StartError::Checkpoint(e) => write!(
                f,
                "latest published checkpoint does not load into the server's replica: {e}"
            ),
        }
    }
}

impl std::error::Error for StartError {}

impl From<CheckpointError> for StartError {
    fn from(e: CheckpointError) -> Self {
        StartError::Checkpoint(e)
    }
}

/// A served inference result.
#[derive(Debug, Clone)]
pub struct Response {
    /// The model's output row for this sample (e.g. class logits).
    pub logits: Vec<f32>,
    /// Registry version of the model that produced the output.
    pub model_version: u64,
    /// Submit-to-completion latency.
    pub latency: Duration,
    /// Size of the batch this request was executed in.
    pub batch_size: usize,
}

/// The per-request completion slot: one writer (the executing worker), one
/// waiter (the client that submitted).
struct Slot {
    state: Mutex<Option<Result<Response, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// First completion wins; later writes (e.g. the [`Request`] drop
    /// guard firing after a normal completion) are ignored.
    fn complete(&self, result: Result<Response, ServeError>) {
        let mut state = self.state.lock().unwrap();
        if state.is_none() {
            *state = Some(result);
            drop(state);
            self.ready.notify_all();
        }
    }
}

/// A handle to one in-flight request ([`ServeClient::submit`]); redeem it
/// with [`Pending::wait`].
pub struct Pending {
    slot: Arc<Slot>,
}

impl fmt::Debug for Pending {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let done = self.slot.state.lock().unwrap().is_some();
        f.debug_struct("Pending").field("done", &done).finish()
    }
}

impl Pending {
    /// Blocks until the request completes (successfully or not).
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.slot.ready.wait(state).unwrap();
        }
    }

    /// Non-blocking poll: the outcome if the request has completed, or the
    /// handle back (`Err`) to poll again later. Consuming `self` keeps the
    /// completion single-shot — a redeemed handle cannot be waited on
    /// twice.
    pub fn try_wait(self) -> Result<Result<Response, ServeError>, Pending> {
        let taken = self.slot.state.lock().unwrap().take();
        match taken {
            Some(result) => Ok(result),
            None => Err(self),
        }
    }
}

/// One queued inference request.
struct Request {
    sample: Tensor,
    enqueued: Instant,
    deadline: Option<Instant>,
    slot: Arc<Slot>,
}

impl Drop for Request {
    /// Completion back-stop: a request dropped without a result (its
    /// executing worker panicked mid-batch, or the server was torn down
    /// with it still queued) fails its waiter instead of stranding it on a
    /// condvar forever. A no-op after a normal completion (first write
    /// wins in [`Slot::complete`]).
    fn drop(&mut self) {
        self.slot.complete(Err(ServeError::WorkerPanicked));
    }
}

/// Server sizing and batching knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads, each with its own model replica.
    pub workers: usize,
    /// Admission queue bound (requests beyond it are rejected with
    /// [`ServeError::Backpressure`]).
    pub queue_capacity: usize,
    /// The micro-batching policy.
    pub policy: BatchPolicy,
    /// How long an idle worker blocks before re-checking the registry for
    /// hot-swaps (pure idle-path knob; requests wake workers immediately).
    pub idle_poll: Duration,
}

impl ServerConfig {
    /// A configuration with the given knobs and a 1 ms idle poll.
    pub fn new(workers: usize, queue_capacity: usize, policy: BatchPolicy) -> Self {
        assert!(workers > 0, "server needs at least one worker");
        ServerConfig {
            workers,
            queue_capacity,
            policy,
            idle_poll: Duration::from_millis(1),
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new(1, 64, BatchPolicy::new(8, 200))
    }
}

/// State shared by clients and workers.
struct Shared {
    queue: BoundedQueue<Request>,
    metrics: ServerMetrics,
    registry: Arc<ModelRegistry>,
    model_name: String,
    input_dims: Vec<usize>,
    policy: BatchPolicy,
    idle_poll: Duration,
}

/// A cloneable request-submission handle (the "connection" object load
/// generators hand to each client thread).
#[derive(Clone)]
pub struct ServeClient {
    shared: Arc<Shared>,
}

impl ServeClient {
    /// Submits one single-sample request; returns a [`Pending`] completion
    /// handle without blocking on execution. `deadline` (measured from now)
    /// lets the server drop the request unexecuted once it can no longer be
    /// useful.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] for a sample that does not match the
    /// served model, [`ServeError::Backpressure`] when the admission queue
    /// is full, [`ServeError::Shutdown`] after shutdown began.
    pub fn submit(
        &self,
        sample: Tensor,
        deadline: Option<Duration>,
    ) -> Result<Pending, ServeError> {
        if sample.dims() != &self.shared.input_dims[..] {
            return Err(ServeError::ShapeMismatch {
                expected: self.shared.input_dims.clone(),
                got: sample.dims().to_vec(),
            });
        }
        let slot = Arc::new(Slot::new());
        let now = Instant::now();
        let request = Request {
            sample,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            slot: Arc::clone(&slot),
        };
        match self.shared.queue.try_push(request) {
            Ok(()) => Ok(Pending { slot }),
            Err(PushError::Full(_)) => {
                self.shared.metrics.record_rejected();
                Err(ServeError::Backpressure {
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::Shutdown),
        }
    }

    /// Submits and blocks for the response — the closed-loop client call.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::submit`], plus any execution-time failure
    /// ([`ServeError::DeadlineExceeded`]).
    pub fn infer(
        &self,
        sample: Tensor,
        deadline: Option<Duration>,
    ) -> Result<Response, ServeError> {
        self.submit(sample, deadline)?.wait()
    }

    /// Current admission-queue depth (diagnostic).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }
}

/// The serving engine: owns the admission queue and the worker pool.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a server for registry model `model_name`.
    ///
    /// `replica` builds one structurally identical, *unweighted* model per
    /// worker (the same closure shape as `hs-fl`'s `ModelFactory`); each
    /// replica is fused for inference and loaded from the latest published
    /// checkpoint before serving. `input_dims` is the per-sample input
    /// shape (e.g. `[3, 32, 32]`); requests are validated against it at
    /// admission.
    ///
    /// # Errors
    ///
    /// [`StartError::UnknownModel`] when nothing is published under
    /// `model_name`; [`StartError::Checkpoint`] when the latest checkpoint
    /// does not load into the factory's replica (wrong architecture,
    /// truncated blob, ...).
    pub fn start(
        registry: Arc<ModelRegistry>,
        model_name: &str,
        replica: impl Fn() -> Network + Send + Sync + 'static,
        input_dims: &[usize],
        config: ServerConfig,
    ) -> Result<Server, StartError> {
        let initial = registry
            .latest(model_name)
            .ok_or_else(|| StartError::UnknownModel {
                name: model_name.to_string(),
                available: registry.names(),
            })?;
        // validate once up-front so a bad registry entry fails loudly here,
        // not inside a worker thread
        let make_replica = Arc::new(replica);
        let mut probe = make_replica();
        probe.fuse_inference();
        probe.load_checkpoint_bytes(&initial.bytes)?;
        drop(probe);

        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: ServerMetrics::new(),
            registry,
            model_name: model_name.to_string(),
            input_dims: input_dims.to_vec(),
            policy: config.policy,
            idle_poll: config.idle_poll,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let make_replica = Arc::clone(&make_replica);
                let initial = Arc::clone(&initial);
                std::thread::Builder::new()
                    .name(format!("hs-serve-{i}"))
                    .spawn(move || {
                        let mut net = make_replica();
                        net.fuse_inference();
                        net.load_checkpoint_bytes(&initial.bytes)
                            .expect("validated at start");
                        worker_loop(&shared, &mut net, initial.version);
                    })
                    .expect("failed to spawn serving worker")
            })
            .collect();
        Ok(Server { shared, workers })
    }

    /// A cloneable submission handle.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Aggregated metrics so far.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Clears the metrics (between load-sweep configurations).
    pub fn reset_metrics(&self) {
        self.shared.metrics.reset()
    }

    /// Graceful shutdown: stops admitting, lets the workers drain every
    /// already-accepted request, and joins them.
    pub fn shutdown(mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    /// Dropping without [`Server::shutdown`] still stops admission and lets
    /// the workers drain and exit on their own (they hold their own `Arc`s).
    fn drop(&mut self) {
        self.shared.queue.close();
    }
}

/// One worker: hot-swap check, collect, execute, route — forever.
fn worker_loop(shared: &Shared, net: &mut Network, mut version: u64) {
    let mut batch_in = Tensor::zeros(&[0]);
    loop {
        // Hot-swap strictly between batches: the batch that is about to run
        // sees exactly one published version, never a half-loaded mix. A
        // version that fails to load (e.g. published for a different
        // architecture under the same name) is skipped and the worker keeps
        // serving its current weights.
        if let Some(latest) = shared.registry.latest(&shared.model_name) {
            if latest.version != version && net.load_checkpoint_bytes(&latest.bytes).is_ok() {
                version = latest.version;
            }
        }
        match collect_batch(&shared.queue, &shared.policy, shared.idle_poll) {
            Collected::Closed => break,
            Collected::Idle => continue,
            Collected::Batch(requests) => {
                // Panic containment: a forward that panics (e.g. a custom
                // layer blowing up on one input) must not kill the worker
                // and strand every queued client. The unwound batch's
                // requests complete with `WorkerPanicked` via the Request
                // drop guard; the worker resumes with the next batch.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_batch(shared, net, version, &mut batch_in, requests)
                }));
                if result.is_err() {
                    eprintln!(
                        "hs-serve: worker survived a panic while executing a batch; \
                         the batch's requests were aborted"
                    );
                }
            }
        }
    }
}

/// Executes one collected micro-batch and routes the responses.
fn run_batch(
    shared: &Shared,
    net: &mut Network,
    version: u64,
    batch_in: &mut Tensor,
    requests: Vec<Request>,
) {
    // deadline triage first: expired requests are dropped unexecuted so
    // they cost no forward time
    let now = Instant::now();
    let mut live = Vec::with_capacity(requests.len());
    for request in requests {
        match request.deadline {
            Some(d) if now > d => {
                shared.metrics.record_expired();
                request.slot.complete(Err(ServeError::DeadlineExceeded {
                    waited: now - request.enqueued,
                }));
            }
            _ => live.push(request),
        }
    }
    if live.is_empty() {
        return;
    }

    let batch = live.len();
    let sample_len: usize = shared.input_dims.iter().product();
    let mut dims = Vec::with_capacity(1 + shared.input_dims.len());
    dims.push(batch);
    dims.extend_from_slice(&shared.input_dims);
    batch_in.resize_to(&dims);
    let stacked = batch_in.as_mut_slice();
    for (i, request) in live.iter().enumerate() {
        stacked[i * sample_len..(i + 1) * sample_len].copy_from_slice(request.sample.as_slice());
    }

    let out = net.infer(batch_in);
    let row = out.len() / batch;
    let out_rows = out.as_slice();
    shared.metrics.record_batch(batch);
    for (i, request) in live.into_iter().enumerate() {
        let latency = request.enqueued.elapsed();
        shared.metrics.record_completion(latency);
        request.slot.complete(Ok(Response {
            logits: out_rows[i * row..(i + 1) * row].to_vec(),
            model_version: version,
            latency,
            batch_size: batch,
        }));
    }
}
