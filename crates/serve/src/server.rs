//! The serving engine: admission, micro-batched execution on a pool of
//! per-worker model replicas, and response routing.
//!
//! Request lifecycle:
//!
//! 1. A [`ServeClient`] validates the sample shape and [`BoundedQueue::
//!    try_push`]es a request carrying its completion [`Pending`] slot —
//!    a full queue rejects immediately with [`ServeError::Backpressure`].
//! 2. A worker thread collects a micro-batch under the
//!    [`crate::BatchPolicy`], drops requests whose deadline already passed
//!    ([`ServeError::DeadlineExceeded`]), stacks the survivors into one
//!    `[b, ...]` tensor and runs **one** batched forward on its own fused +
//!    planned [`Network`] replica (warm steady-state forwards allocate
//!    nothing in the planned layers, and skinny per-sample GEMMs coalesce
//!    across the batch — the whole point of batching here).
//! 3. Each request's logits row is routed back through its completion slot;
//!    latency and batch-size metrics are recorded.
//!
//! Between batches every worker polls the [`ModelRegistry`] and atomically
//! hot-swaps its replica when a newer version of the served model was
//! published — an in-flight batch always runs on exactly one version.
//!
//! The whole lifecycle is traced through `hs_obs` when `HS_TRACE` is set:
//! an `admit` span per submission, `batch_collect`/`batch_execute`/
//! `batch_route` spans per batch, per-request `request`/`queue_wait`/
//! `serve` spans reconstructed from captured timestamps, and instant
//! events for `rejected`/`expired`/`shed` requests and supervisor
//! transitions (`worker_panic`, `worker_restart`, `brownout_enter`,
//! `brownout_exit`). With tracing off each site is a single relaxed
//! atomic load (see `docs/OBSERVABILITY.md`).

use crate::batcher::{collect_batch, BatchPolicy, Collected};
use crate::metrics::{MetricsSnapshot, ServerMetrics};
use crate::queue::{BoundedQueue, Popped, PushError};
use crate::registry::{ModelRegistry, ModelVersion};
use crate::sync::{lock, wait};
use hs_nn::{CheckpointError, Network};
use hs_obs::{instant_ns, now_ns, trace};
use hs_tensor::{DType, Tensor};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a request was not served.
#[derive(Debug)]
pub enum ServeError {
    /// The admission queue is full: shed load or retry later.
    Backpressure {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The request's deadline passed before a worker executed it.
    DeadlineExceeded {
        /// How long the request had been waiting when it was dropped.
        waited: Duration,
    },
    /// The sample's shape does not match the model the server was built
    /// for.
    ShapeMismatch {
        /// Per-sample input shape the server expects.
        expected: Vec<usize>,
        /// Shape of the rejected sample.
        got: Vec<usize>,
    },
    /// The server is shutting down (or already shut down).
    Shutdown,
    /// The worker executing this request's batch panicked; the request was
    /// aborted (the supervisor respawns the worker, so later requests keep
    /// being served).
    WorkerPanicked,
    /// Brownout load-shedding: the server is in sustained overload and this
    /// request's deadline slack was too small to be worth executing. Unlike
    /// [`ServeError::Backpressure`] (admission-time, queue full) this is an
    /// execution-time decision; callers should retry with backoff or lower
    /// their offered load.
    Shed {
        /// Queue depth observed when the request was shed.
        queue_depth: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Backpressure { capacity } => write!(
                f,
                "request rejected: admission queue is at capacity ({capacity}) — the server \
                 is overloaded; retry with backoff or raise queue_capacity/workers"
            ),
            ServeError::DeadlineExceeded { waited } => write!(
                f,
                "request expired after waiting {waited:?}: its deadline passed before a \
                 worker could execute it"
            ),
            ServeError::ShapeMismatch { expected, got } => write!(
                f,
                "sample shape {got:?} does not match the served model's input {expected:?}"
            ),
            ServeError::Shutdown => write!(f, "server is shut down"),
            ServeError::WorkerPanicked => write!(
                f,
                "internal error: the worker executing this request's batch panicked; \
                 the request was aborted"
            ),
            ServeError::Shed { queue_depth } => write!(
                f,
                "request shed: the server is in brownout (queue depth {queue_depth}) and \
                 this request's deadline slack was too small to execute; retry with backoff"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Why [`Server::start`] refused to start.
#[derive(Debug)]
pub enum StartError {
    /// No version of the requested model is published in the registry.
    UnknownModel {
        /// The requested name.
        name: String,
        /// Names that are published.
        available: Vec<String>,
    },
    /// The latest published checkpoint does not load into the replica the
    /// factory builds.
    Checkpoint(CheckpointError),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::UnknownModel { name, available } => write!(
                f,
                "model {name:?} has no published version in the registry (available: \
                 {available:?}); publish a checkpoint before starting the server"
            ),
            StartError::Checkpoint(e) => write!(
                f,
                "latest published checkpoint does not load into the server's replica: {e}"
            ),
        }
    }
}

impl std::error::Error for StartError {}

impl From<CheckpointError> for StartError {
    fn from(e: CheckpointError) -> Self {
        StartError::Checkpoint(e)
    }
}

/// A served inference result.
#[derive(Debug, Clone)]
pub struct Response {
    /// The model's output row for this sample (e.g. class logits).
    pub logits: Vec<f32>,
    /// Registry version of the model that produced the output.
    pub model_version: u64,
    /// Submit-to-completion latency.
    pub latency: Duration,
    /// Size of the batch this request was executed in.
    pub batch_size: usize,
}

/// The per-request completion slot: one writer (the executing worker), one
/// waiter (the client that submitted).
struct Slot {
    state: Mutex<Option<Result<Response, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// First completion wins; later writes (e.g. the [`Request`] drop
    /// guard firing after a normal completion) are ignored.
    fn complete(&self, result: Result<Response, ServeError>) {
        let mut state = lock(&self.state);
        if state.is_none() {
            *state = Some(result);
            drop(state);
            self.ready.notify_all();
        }
    }
}

/// A handle to one in-flight request ([`ServeClient::submit`]); redeem it
/// with [`Pending::wait`].
pub struct Pending {
    slot: Arc<Slot>,
}

impl fmt::Debug for Pending {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let done = lock(&self.slot.state).is_some();
        f.debug_struct("Pending").field("done", &done).finish()
    }
}

impl Pending {
    /// Blocks until the request completes (successfully or not).
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut state = lock(&self.slot.state);
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = wait(&self.slot.ready, state);
        }
    }

    /// Non-blocking poll: the outcome if the request has completed, or the
    /// handle back (`Err`) to poll again later. Consuming `self` keeps the
    /// completion single-shot — a redeemed handle cannot be waited on
    /// twice.
    pub fn try_wait(self) -> Result<Result<Response, ServeError>, Pending> {
        let taken = lock(&self.slot.state).take();
        match taken {
            Some(result) => Ok(result),
            None => Err(self),
        }
    }
}

/// One queued inference request.
struct Request {
    sample: Tensor,
    enqueued: Instant,
    deadline: Option<Instant>,
    slot: Arc<Slot>,
    /// `hs_obs` correlation id stamped at admission (0 when tracing is
    /// off); every trace record for this request carries it as payload.
    trace_id: u64,
}

impl Drop for Request {
    /// Completion back-stop: a request dropped without a result (its
    /// executing worker panicked mid-batch, or the server was torn down
    /// with it still queued) fails its waiter instead of stranding it on a
    /// condvar forever. A no-op after a normal completion (first write
    /// wins in [`Slot::complete`]).
    fn drop(&mut self) {
        self.slot.complete(Err(ServeError::WorkerPanicked));
    }
}

/// Brownout (overload self-protection) knobs.
///
/// The supervisor samples the admission-queue depth every poll tick; when
/// it stays at or above `high_watermark × queue_capacity` for
/// `enter_ticks` consecutive ticks the server enters brownout, and it
/// exits once the depth stays at or below `low_watermark × queue_capacity`
/// for `exit_ticks` ticks (watermark hysteresis, so the mode doesn't
/// flap). While browned out, workers close batches `wait_divisor`× sooner
/// (trading batch fullness for queue drain rate) and shed queued requests
/// whose deadline slack has fallen under `min_slack` with
/// [`ServeError::Shed`] — those requests were going to expire anyway, and
/// shedding them early spends the forward pass on requests that can still
/// make their deadlines instead of letting p99 collapse for everyone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Queue-depth fraction (of capacity) that counts as overload.
    pub high_watermark: f32,
    /// Queue-depth fraction at which the overload is considered over.
    pub low_watermark: f32,
    /// Consecutive over-watermark supervisor ticks before entering.
    pub enter_ticks: u32,
    /// Consecutive under-watermark supervisor ticks before exiting.
    pub exit_ticks: u32,
    /// Factor by which `max_wait` shrinks while browned out (≥ 1).
    pub wait_divisor: u32,
    /// Minimum deadline slack for a request to be worth executing while
    /// browned out; requests with less are shed.
    pub min_slack: Duration,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            high_watermark: 0.75,
            low_watermark: 0.25,
            enter_ticks: 3,
            exit_ticks: 10,
            wait_divisor: 4,
            min_slack: Duration::from_millis(2),
        }
    }
}

impl BrownoutConfig {
    fn validate(&self) {
        assert!(
            self.high_watermark > 0.0 && self.high_watermark <= 1.0,
            "high_watermark must be in (0, 1], got {}",
            self.high_watermark
        );
        assert!(
            self.low_watermark > 0.0 && self.low_watermark <= self.high_watermark,
            "low_watermark must be in (0, high_watermark], got {}",
            self.low_watermark
        );
        assert!(self.enter_ticks > 0, "enter_ticks must be positive");
        assert!(self.exit_ticks > 0, "exit_ticks must be positive");
        assert!(self.wait_divisor > 0, "wait_divisor must be positive");
    }
}

/// Server sizing, batching and self-healing knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads, each with its own model replica.
    pub workers: usize,
    /// Admission queue bound (requests beyond it are rejected with
    /// [`ServeError::Backpressure`]).
    pub queue_capacity: usize,
    /// The micro-batching policy.
    pub policy: BatchPolicy,
    /// How long an idle worker blocks before re-checking the registry for
    /// hot-swaps (pure idle-path knob; requests wake workers immediately).
    pub idle_poll: Duration,
    /// Restart budget per worker slot: how many times the supervisor
    /// respawns a panicked worker before declaring the slot dead. When
    /// every slot is dead the server closes its queue and fails remaining
    /// requests with [`ServeError::Shutdown`] instead of hanging them.
    pub max_worker_restarts: u32,
    /// Base respawn delay; doubles per restart of the same slot (capped at
    /// 64× the base) so a crash-looping model doesn't spin the CPU.
    pub restart_backoff: Duration,
    /// How often the supervisor reaps panicked workers and samples the
    /// queue depth for brownout decisions.
    pub supervisor_poll: Duration,
    /// Brownout (overload self-protection) configuration.
    pub brownout: BrownoutConfig,
    /// Inference dtype for every worker replica. Applied after fusion and
    /// before the checkpoint load, so published f32 checkpoints quantize on
    /// load (see `hs_nn::Network::to_dtype`). Defaults to the `HS_DTYPE`
    /// environment override, falling back to f32.
    pub replica_dtype: DType,
}

impl ServerConfig {
    /// A configuration with the given knobs, a 1 ms idle poll, and default
    /// self-healing knobs (5 restarts per worker at 5 ms base backoff,
    /// default [`BrownoutConfig`]); the replica dtype comes from `HS_DTYPE`
    /// (f32 when unset).
    pub fn new(workers: usize, queue_capacity: usize, policy: BatchPolicy) -> Self {
        assert!(workers > 0, "server needs at least one worker");
        ServerConfig {
            workers,
            queue_capacity,
            policy,
            idle_poll: Duration::from_millis(1),
            max_worker_restarts: 5,
            restart_backoff: Duration::from_millis(5),
            supervisor_poll: Duration::from_millis(1),
            brownout: BrownoutConfig::default(),
            replica_dtype: DType::from_env().unwrap_or(DType::F32),
        }
    }

    /// The default worker count: one per available hardware thread
    /// (`std::thread::available_parallelism`), 1 when that is unknowable.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    }

    /// Sets the worker-replica inference dtype explicitly, overriding the
    /// `HS_DTYPE` environment default.
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.replica_dtype = dtype;
        self
    }
}

impl Default for ServerConfig {
    /// One worker per available hardware thread, a 64-deep admission queue
    /// and a `(8, 200 µs)` batching policy.
    fn default() -> Self {
        ServerConfig::new(Self::default_workers(), 64, BatchPolicy::new(8, 200))
    }
}

/// State shared by clients, workers and the supervisor.
struct Shared {
    queue: BoundedQueue<Request>,
    metrics: ServerMetrics,
    registry: Arc<ModelRegistry>,
    model_name: String,
    input_dims: Vec<usize>,
    policy: BatchPolicy,
    idle_poll: Duration,
    brownout: BrownoutConfig,
    /// Set by the supervisor's watermark hysteresis; read by workers to
    /// shrink `max_wait` and shed low-slack requests.
    brownout_active: AtomicBool,
    /// Fault-injection hook ([`Server::inject_worker_panic`]): the next
    /// worker to start a batch swaps this to false and panics.
    panic_fuse: AtomicBool,
    /// The start-validated first checkpoint — the respawn fallback when the
    /// registry's latest version no longer loads into a fresh replica.
    initial: Arc<ModelVersion>,
    /// Inference dtype every worker replica is converted to before loading
    /// weights (so checkpoints quantize on load).
    replica_dtype: DType,
}

/// A cloneable request-submission handle (the "connection" object load
/// generators hand to each client thread).
#[derive(Clone)]
pub struct ServeClient {
    shared: Arc<Shared>,
}

impl ServeClient {
    /// Submits one single-sample request; returns a [`Pending`] completion
    /// handle without blocking on execution. `deadline` (measured from now)
    /// lets the server drop the request unexecuted once it can no longer be
    /// useful.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] for a sample that does not match the
    /// served model, [`ServeError::Backpressure`] when the admission queue
    /// is full, [`ServeError::Shutdown`] after shutdown began.
    pub fn submit(
        &self,
        sample: Tensor,
        deadline: Option<Duration>,
    ) -> Result<Pending, ServeError> {
        if sample.dims() != &self.shared.input_dims[..] {
            return Err(ServeError::ShapeMismatch {
                expected: self.shared.input_dims.clone(),
                got: sample.dims().to_vec(),
            });
        }
        let trace_id = trace::next_id();
        let admit = trace::span("admit");
        admit.set_payload(trace_id);
        let slot = Arc::new(Slot::new());
        let now = Instant::now();
        let request = Request {
            sample,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            slot: Arc::clone(&slot),
            trace_id,
        };
        match self.shared.queue.try_push(request) {
            Ok(()) => Ok(Pending { slot }),
            Err(PushError::Full(_)) => {
                self.shared.metrics.record_rejected();
                trace::instant("rejected", trace_id);
                Err(ServeError::Backpressure {
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::Shutdown),
        }
    }

    /// Submits and blocks for the response — the closed-loop client call.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::submit`], plus any execution-time failure
    /// ([`ServeError::DeadlineExceeded`]).
    pub fn infer(
        &self,
        sample: Tensor,
        deadline: Option<Duration>,
    ) -> Result<Response, ServeError> {
        self.submit(sample, deadline)?.wait()
    }

    /// Current admission-queue depth (diagnostic).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }
}

/// The serving engine: owns the admission queue, the worker pool and the
/// supervisor that keeps the pool alive.
pub struct Server {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts a server for registry model `model_name`.
    ///
    /// `replica` builds one structurally identical, *unweighted* model per
    /// worker (the same closure shape as `hs-fl`'s `ModelFactory`); each
    /// replica is fused for inference and loaded from the latest published
    /// checkpoint before serving. `input_dims` is the per-sample input
    /// shape (e.g. `[3, 32, 32]`); requests are validated against it at
    /// admission.
    ///
    /// # Errors
    ///
    /// [`StartError::UnknownModel`] when nothing is published under
    /// `model_name`; [`StartError::Checkpoint`] when the latest checkpoint
    /// does not load into the factory's replica (wrong architecture,
    /// truncated blob, ...).
    pub fn start(
        registry: Arc<ModelRegistry>,
        model_name: &str,
        replica: impl Fn() -> Network + Send + Sync + 'static,
        input_dims: &[usize],
        config: ServerConfig,
    ) -> Result<Server, StartError> {
        let initial = registry
            .latest(model_name)
            .ok_or_else(|| StartError::UnknownModel {
                name: model_name.to_string(),
                available: registry.names(),
            })?;
        // validate once up-front so a bad registry entry fails loudly here,
        // not inside a worker thread
        let make_replica: Arc<dyn Fn() -> Network + Send + Sync> = Arc::new(replica);
        let mut probe = make_replica();
        probe.fuse_inference();
        probe.to_dtype(config.replica_dtype);
        probe.load_checkpoint_bytes(&initial.bytes)?;
        drop(probe);

        config.brownout.validate();
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: ServerMetrics::new(),
            registry,
            model_name: model_name.to_string(),
            input_dims: input_dims.to_vec(),
            policy: config.policy,
            idle_poll: config.idle_poll,
            brownout: config.brownout,
            brownout_active: AtomicBool::new(false),
            panic_fuse: AtomicBool::new(false),
            initial,
            replica_dtype: config.replica_dtype,
        });
        let slots: Vec<WorkerSlot> = (0..config.workers)
            .map(|i| WorkerSlot::Running {
                handle: spawn_worker(&shared, &make_replica, i),
                restarts: 0,
            })
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            let params = SupervisorParams {
                max_restarts: config.max_worker_restarts,
                backoff_base: config.restart_backoff,
                poll: config.supervisor_poll,
            };
            std::thread::Builder::new()
                .name("hs-serve-supervisor".to_string())
                .spawn(move || supervisor_loop(&shared, &make_replica, params, slots))
                .expect("failed to spawn serving supervisor")
        };
        Ok(Server {
            shared,
            supervisor: Some(supervisor),
        })
    }

    /// A cloneable submission handle.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Aggregated metrics so far.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Clears the metrics (between load-sweep configurations).
    pub fn reset_metrics(&self) {
        self.shared.metrics.reset()
    }

    /// Whether the server is currently in brownout mode (diagnostic).
    pub fn brownout_active(&self) -> bool {
        self.shared.brownout_active.load(Ordering::Relaxed)
    }

    /// Fault-injection hook for chaos tests: the next worker to start
    /// executing a batch panics. Its in-flight requests fail with
    /// [`ServeError::WorkerPanicked`] and the supervisor respawns the
    /// worker — exactly the life cycle the chaos harness asserts on.
    pub fn inject_worker_panic(&self) {
        self.shared.panic_fuse.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stops admitting, lets the workers drain every
    /// already-accepted request, and joins the supervisor (which joins the
    /// workers).
    pub fn shutdown(mut self) {
        self.shared.queue.close();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    /// Dropping without [`Server::shutdown`] still stops admission and lets
    /// the workers and supervisor drain and exit on their own (they hold
    /// their own `Arc`s).
    fn drop(&mut self) {
        self.shared.queue.close();
    }
}

/// One worker slot as the supervisor tracks it.
enum WorkerSlot {
    /// A live worker thread (or one that has exited and awaits reaping).
    Running {
        handle: JoinHandle<()>,
        restarts: u32,
    },
    /// A panicked worker waiting out its respawn backoff.
    Backoff { at: Instant, restarts: u32 },
    /// Restart budget exhausted; this slot serves no more.
    Dead,
}

/// Supervisor knobs captured at start.
struct SupervisorParams {
    max_restarts: u32,
    backoff_base: Duration,
    poll: Duration,
}

/// Spawns one worker thread on `slot_index`, loading the freshest weights
/// it can: the registry's latest version, falling back to the
/// start-validated initial checkpoint if that version no longer loads.
fn spawn_worker(
    shared: &Arc<Shared>,
    make_replica: &Arc<dyn Fn() -> Network + Send + Sync>,
    slot_index: usize,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let make_replica = Arc::clone(make_replica);
    std::thread::Builder::new()
        .name(format!("hs-serve-{slot_index}"))
        .spawn(move || {
            let mut net = make_replica();
            net.fuse_inference();
            net.to_dtype(shared.replica_dtype);
            let mut version = shared.initial.version;
            let loaded_latest = shared
                .registry
                .latest(&shared.model_name)
                .filter(|latest| net.load_checkpoint_bytes(&latest.bytes).is_ok())
                .map(|latest| version = latest.version)
                .is_some();
            if !loaded_latest {
                net.load_checkpoint_bytes(&shared.initial.bytes)
                    .expect("validated at start");
            }
            worker_loop(&shared, &mut net, version);
        })
        .expect("failed to spawn serving worker")
}

/// The supervisor: reaps panicked workers, respawns them with exponential
/// backoff under a bounded restart budget, runs the brownout watermark
/// hysteresis, and — when the whole pool is dead or the server shuts down —
/// makes sure no queued request is left hanging.
fn supervisor_loop(
    shared: &Arc<Shared>,
    make_replica: &Arc<dyn Fn() -> Network + Send + Sync>,
    params: SupervisorParams,
    mut slots: Vec<WorkerSlot>,
) {
    let brownout = shared.brownout;
    let capacity = shared.queue.capacity() as f32;
    let high_mark = (brownout.high_watermark * capacity).ceil() as usize;
    let low_mark = (brownout.low_watermark * capacity).floor() as usize;
    let mut high_ticks = 0u32;
    let mut low_ticks = 0u32;

    loop {
        if shared.queue.is_closed() {
            // shutdown: the workers drain the queue and exit; join them,
            // then fail anything left (possible only if every worker died
            // before draining finished)
            for slot in slots {
                if let WorkerSlot::Running { handle, .. } = slot {
                    let _ = handle.join();
                }
            }
            fail_queued(shared);
            return;
        }

        // --- reap exited workers
        for slot in slots.iter_mut() {
            let finished =
                matches!(slot, WorkerSlot::Running { handle, .. } if handle.is_finished());
            if !finished {
                continue;
            }
            let WorkerSlot::Running { handle, restarts } =
                std::mem::replace(slot, WorkerSlot::Dead)
            else {
                unreachable!("checked above");
            };
            let panicked = handle.join().is_err();
            if !panicked {
                // normal exit with the queue open only happens in the
                // close() race right before shutdown; Dead is correct
                continue;
            }
            shared.metrics.record_worker_panic();
            trace::instant("worker_panic", restarts as u64);
            if restarts < params.max_restarts {
                let backoff = params.backoff_base * 2u32.pow(restarts.min(6));
                *slot = WorkerSlot::Backoff {
                    at: Instant::now() + backoff,
                    restarts: restarts + 1,
                };
            }
            // else: stays Dead — restart budget exhausted
        }

        // --- respawn workers whose backoff elapsed
        let now = Instant::now();
        for (i, slot) in slots.iter_mut().enumerate() {
            if let WorkerSlot::Backoff { at, restarts } = *slot {
                if now >= at {
                    shared.metrics.record_worker_restart();
                    trace::instant("worker_restart", i as u64);
                    *slot = WorkerSlot::Running {
                        handle: spawn_worker(shared, make_replica, i),
                        restarts,
                    };
                }
            }
        }

        // --- a fully dead pool must not strand clients: stop admission and
        // fail everything still queued
        if slots.iter().all(|s| matches!(s, WorkerSlot::Dead)) {
            shared.queue.close();
            fail_queued(shared);
            return;
        }

        // --- brownout watermark hysteresis
        let depth = shared.queue.len();
        if depth >= high_mark {
            high_ticks += 1;
            low_ticks = 0;
        } else if depth <= low_mark {
            low_ticks += 1;
            high_ticks = 0;
        } else {
            high_ticks = 0;
            low_ticks = 0;
        }
        let active = shared.brownout_active.load(Ordering::Relaxed);
        if !active && high_ticks >= brownout.enter_ticks {
            shared.brownout_active.store(true, Ordering::Relaxed);
            shared.metrics.record_brownout_entry();
            trace::instant("brownout_enter", depth as u64);
        } else if active && low_ticks >= brownout.exit_ticks {
            shared.brownout_active.store(false, Ordering::Relaxed);
            trace::instant("brownout_exit", depth as u64);
        }

        std::thread::sleep(params.poll);
    }
}

/// Drains the (closed) queue, completing every remaining request with
/// [`ServeError::Shutdown`] so no waiter hangs.
fn fail_queued(shared: &Shared) {
    while let Popped::Item(request) = shared.queue.pop_timeout(Duration::ZERO) {
        request.slot.complete(Err(ServeError::Shutdown));
    }
}

/// One worker: hot-swap check, collect, execute, route — until the queue
/// closes (or a panic unwinds the thread; the supervisor takes it from
/// there, and the in-flight batch's requests fail via the [`Request`] drop
/// guard rather than hanging).
fn worker_loop(shared: &Shared, net: &mut Network, mut version: u64) {
    let mut batch_in = Tensor::zeros(&[0]);
    loop {
        // Hot-swap strictly between batches: the batch that is about to run
        // sees exactly one published version, never a half-loaded mix. A
        // version that fails to load (e.g. published for a different
        // architecture under the same name) is skipped and the worker keeps
        // serving its current weights.
        if let Some(latest) = shared.registry.latest(&shared.model_name) {
            if latest.version != version && net.load_checkpoint_bytes(&latest.bytes).is_ok() {
                version = latest.version;
            }
        }
        // Brownout shrinks max_wait: under sustained overload, waiting for
        // batch companions is pointless (the queue is full of them) and the
        // drain rate is what protects p99.
        let mut policy = shared.policy;
        if shared.brownout_active.load(Ordering::Relaxed) {
            policy.max_wait /= shared.brownout.wait_divisor;
        }
        // Explicit-time span so idle collect rounds (the common case on a
        // quiet server) record nothing at all.
        let collect_from = if trace::enabled() { now_ns() } else { 0 };
        match collect_batch(&shared.queue, &policy, shared.idle_poll) {
            Collected::Closed => break,
            Collected::Idle => continue,
            Collected::Batch(requests) => {
                if collect_from != 0 {
                    trace::span_at(
                        "batch_collect",
                        collect_from,
                        now_ns(),
                        0,
                        requests.len() as u64,
                    );
                }
                if shared.panic_fuse.swap(false, Ordering::SeqCst) {
                    // chaos hook: die exactly like a real mid-batch panic
                    // (the requests vector unwinds → drop guards fire)
                    panic!("injected worker panic (Server::inject_worker_panic)");
                }
                run_batch(shared, net, version, &mut batch_in, requests);
            }
        }
    }
}

/// Executes one collected micro-batch and routes the responses.
fn run_batch(
    shared: &Shared,
    net: &mut Network,
    version: u64,
    batch_in: &mut Tensor,
    requests: Vec<Request>,
) {
    // deadline triage first: expired requests are dropped unexecuted so
    // they cost no forward time; in brownout, requests whose remaining
    // slack is below the configured minimum are shed as well — they would
    // expire before their response is useful, and the forward capacity is
    // better spent on requests that can still make it
    let now = Instant::now();
    let browned_out = shared.brownout_active.load(Ordering::Relaxed);
    let min_slack = shared.brownout.min_slack;
    let mut live = Vec::with_capacity(requests.len());
    for request in requests {
        match request.deadline {
            Some(d) if now > d => {
                shared.metrics.record_expired();
                trace::instant("expired", request.trace_id);
                request.slot.complete(Err(ServeError::DeadlineExceeded {
                    waited: now - request.enqueued,
                }));
            }
            Some(d) if browned_out && d - now < min_slack => {
                shared.metrics.record_shed();
                trace::instant("shed", request.trace_id);
                request.slot.complete(Err(ServeError::Shed {
                    queue_depth: shared.queue.len(),
                }));
            }
            _ => {
                // `now` is batch-open: everything before it was queue wait,
                // everything after is service (the split MetricsSnapshot's
                // queue_p* fields report).
                shared
                    .metrics
                    .record_queue_wait(now.saturating_duration_since(request.enqueued));
                live.push(request);
            }
        }
    }
    if live.is_empty() {
        return;
    }

    let batch = live.len();
    let sample_len: usize = shared.input_dims.iter().product();
    let mut dims = Vec::with_capacity(1 + shared.input_dims.len());
    dims.push(batch);
    dims.extend_from_slice(&shared.input_dims);
    batch_in.resize_to(&dims);
    let stacked = batch_in.as_mut_slice();
    for (i, request) in live.iter().enumerate() {
        stacked[i * sample_len..(i + 1) * sample_len].copy_from_slice(request.sample.as_slice());
    }

    let out = {
        let execute = trace::span("batch_execute");
        execute.set_payload(batch as u64);
        net.infer(batch_in)
    };
    let row = out.len() / batch;
    let out_rows = out.as_slice();
    shared.metrics.record_batch(batch);
    let route = trace::span("batch_route");
    route.set_payload(batch as u64);
    let t_open = instant_ns(now);
    for (i, request) in live.into_iter().enumerate() {
        let latency = request.enqueued.elapsed();
        shared.metrics.record_completion(latency);
        // Per-request timeline, reconstructed from captured timestamps:
        // `request` [enqueued → done] with contiguous children
        // `queue_wait` [enqueued → batch-open] and `serve` [batch-open →
        // done], so the children tile the request's wall-clock exactly
        // (the ≥95 % coverage contract pinned by tests/obs_trace.rs).
        let t_enq = instant_ns(request.enqueued);
        let t_done = now_ns();
        let rid = trace::span_at("request", t_enq, t_done, 0, request.trace_id);
        if rid != 0 {
            trace::span_at("queue_wait", t_enq, t_open, rid, request.trace_id);
            trace::span_at("serve", t_open, t_done, rid, request.trace_id);
        }
        request.slot.complete(Ok(Response {
            logits: out_rows[i * row..(i + 1) * row].to_vec(),
            model_version: version,
            latency,
            batch_size: batch,
        }));
    }
}
