//! Poison-recovering lock helpers used across the serving engine.
//!
//! Every `Mutex`/`Condvar` in this crate guards state that stays valid
//! across a panicking holder: counters, rings, FIFO queues, append-only
//! version maps and single-shot completion slots are all updated in place
//! with no multi-step invariants that a mid-update unwind could tear. A
//! poisoned lock therefore carries no information we need — but calling
//! `.unwrap()` on it would *cascade* one panicked thread into panics in
//! every other thread that touches the same lock, wedging the queue, the
//! registry and every waiting client. These helpers recover the guard via
//! [`PoisonError::into_inner`] instead, which is what lets the worker
//! supervisor treat a panicked worker as an isolated, restartable event.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] that recovers the guard from a poisoned lock.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers the guard from a poisoned lock.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recovers_after_a_holder_panicked() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned(), "the panic must have poisoned the lock");
        assert_eq!(*lock(&m), 7, "helper still reads the value");
        *lock(&m) = 8;
        assert_eq!(*lock(&m), 8, "helper still writes through");
    }
}
