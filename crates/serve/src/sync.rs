//! Poison-recovering lock helpers used across the serving engine.
//!
//! Every `Mutex`/`Condvar` in this crate guards state that stays valid
//! across a panicking holder: counters, rings, FIFO queues, append-only
//! version maps and single-shot completion slots are all updated in place
//! with no multi-step invariants that a mid-update unwind could tear. A
//! poisoned lock therefore carries no information we need — but calling
//! `.unwrap()` on it would *cascade* one panicked thread into panics in
//! every other thread that touches the same lock, wedging the queue, the
//! registry and every waiting client. The helpers recover the guard via
//! `PoisonError::into_inner` instead, which is what lets the worker
//! supervisor treat a panicked worker as an isolated, restartable event.
//!
//! The implementations live in [`hs_parallel::sync`] (shared with the FL
//! round loop); this module re-exports them under the crate-local names the
//! serving engine has always used.

pub(crate) use hs_parallel::sync::{lock, wait, wait_timeout};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recovers_after_a_holder_panicked() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            // hs-lint: allow(raw-lock, "this test deliberately panics while holding to poison the lock")
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned(), "the panic must have poisoned the lock");
        assert_eq!(*lock(&m), 7, "helper still reads the value");
        *lock(&m) = 8;
        assert_eq!(*lock(&m), 8, "helper still writes through");
    }
}
