//! Server-level concurrency tests: request/response routing integrity under
//! load, deadline expiry, admission backpressure, and hot-swap atomicity.

use hs_nn::{Layer, Linear, Network, Sequential};
use hs_serve::{BatchPolicy, ModelRegistry, ServeError, Server, ServerConfig};
use hs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// A `Linear(4, 4)` network whose weights will be overwritten anyway.
fn linear_net() -> Network {
    let mut rng = StdRng::seed_from_u64(0);
    Network::new(Sequential::new(vec![Box::new(Linear::new(4, 4, &mut rng))]))
}

/// Weight vector for `linear_net` computing `y = W x` with `W = c * I` and
/// zero bias (weights layout: 4×4 weight then 4 bias entries).
fn scaled_identity_weights(c: f32) -> Vec<f32> {
    let mut w = vec![0.0f32; 4 * 4 + 4];
    for i in 0..4 {
        w[i * 4 + i] = c;
    }
    w
}

fn publish_scaled_identity(registry: &ModelRegistry, name: &str, c: f32) -> u64 {
    let mut net = linear_net();
    net.set_weights(&scaled_identity_weights(c));
    registry.publish(name, &mut net)
}

#[test]
fn no_cross_request_sample_mixing_under_load() {
    // identity-weight model: every response must echo exactly its own
    // sample, so any batching/routing mix-up is immediately visible
    let registry = Arc::new(ModelRegistry::new());
    publish_scaled_identity(&registry, "id", 1.0);
    let server = Server::start(
        Arc::clone(&registry),
        "id",
        linear_net,
        &[4],
        ServerConfig::new(2, 256, BatchPolicy::new(8, 500)),
    )
    .unwrap();

    let clients: Vec<_> = (0..4)
        .map(|t| {
            let client = server.client();
            std::thread::spawn(move || {
                for i in 0..50 {
                    let v = (t * 1000 + i) as f32;
                    let response = client.infer(Tensor::full(&[4], v), None).unwrap();
                    assert_eq!(
                        response.logits,
                        vec![v; 4],
                        "client {t} request {i} got someone else's samples back"
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    let metrics = server.metrics();
    assert_eq!(metrics.completed, 200);
    assert_eq!(metrics.rejected, 0);
    assert_eq!(metrics.expired, 0);
    server.shutdown();
}

#[test]
fn async_submissions_coalesce_into_real_batches() {
    let registry = Arc::new(ModelRegistry::new());
    publish_scaled_identity(&registry, "id", 1.0);
    let server = Server::start(
        Arc::clone(&registry),
        "id",
        linear_net,
        &[4],
        ServerConfig::new(1, 64, BatchPolicy::new(8, 50_000)),
    )
    .unwrap();
    let client = server.client();
    let pending: Vec<_> = (0..8)
        .map(|i| client.submit(Tensor::full(&[4], i as f32), None).unwrap())
        .collect();
    for (i, p) in pending.into_iter().enumerate() {
        let response = p.wait().unwrap();
        assert_eq!(response.logits, vec![i as f32; 4]);
    }
    let metrics = server.metrics();
    assert_eq!(metrics.completed, 8);
    assert!(
        metrics.mean_batch > 1.0,
        "a 50ms max_wait with 8 queued requests must coalesce, got histogram {:?}",
        metrics.batch_histogram
    );
    server.shutdown();
}

/// A layer that sleeps on every inference forward — the deterministic way
/// to keep a worker busy so queue-level behaviours (backpressure, deadline
/// expiry) can be exercised without racing the real model's speed.
struct Slow(Duration);

impl Layer for Slow {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        std::thread::sleep(self.0);
        input.clone()
    }
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }
    fn name(&self) -> &'static str {
        "slow"
    }
}

fn slow_net(delay: Duration) -> Network {
    let mut rng = StdRng::seed_from_u64(0);
    Network::new(Sequential::new(vec![
        Box::new(Slow(delay)),
        Box::new(Linear::new(4, 4, &mut rng)),
    ]))
}

#[test]
fn full_queue_rejects_with_backpressure() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("slow", &mut slow_net(Duration::from_millis(100)));
    let server = Server::start(
        Arc::clone(&registry),
        "slow",
        || slow_net(Duration::from_millis(100)),
        &[4],
        ServerConfig::new(1, 2, BatchPolicy::batch_of_one()),
    )
    .unwrap();
    let client = server.client();

    // first request occupies the single worker for ~100ms…
    let in_flight = client.submit(Tensor::ones(&[4]), None).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    // …the next two fill the bounded queue…
    let queued: Vec<_> = (0..2)
        .map(|_| client.submit(Tensor::ones(&[4]), None).unwrap())
        .collect();
    // …and the fourth hits admission control
    match client.submit(Tensor::ones(&[4]), None) {
        Err(ServeError::Backpressure { capacity: 2 }) => {}
        other => panic!("expected Backpressure at capacity 2, got {other:?}"),
    }

    in_flight.wait().unwrap();
    for p in queued {
        p.wait().unwrap();
    }
    let metrics = server.metrics();
    assert_eq!(metrics.completed, 3);
    assert_eq!(metrics.rejected, 1);
    server.shutdown();
}

#[test]
fn expired_deadlines_are_dropped_unexecuted() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("slow", &mut slow_net(Duration::from_millis(60)));
    let server = Server::start(
        Arc::clone(&registry),
        "slow",
        || slow_net(Duration::from_millis(60)),
        &[4],
        ServerConfig::new(1, 16, BatchPolicy::batch_of_one()),
    )
    .unwrap();
    let client = server.client();

    // occupy the worker, then queue a request that can only expire
    let in_flight = client.submit(Tensor::ones(&[4]), None).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    let doomed = client
        .submit(Tensor::ones(&[4]), Some(Duration::from_millis(5)))
        .unwrap();
    // a generous deadline on a third request must still complete
    let fine = client
        .submit(Tensor::ones(&[4]), Some(Duration::from_secs(10)))
        .unwrap();

    in_flight.wait().unwrap();
    match doomed.wait() {
        Err(ServeError::DeadlineExceeded { waited }) => {
            assert!(waited >= Duration::from_millis(5));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    fine.wait().unwrap();
    let metrics = server.metrics();
    assert_eq!(metrics.completed, 2);
    assert_eq!(metrics.expired, 1);
    server.shutdown();
}

#[test]
fn hot_swap_is_atomic_no_torn_weights() {
    // two versions of the model: W = 1*I and W = 2*I. Under concurrent
    // publishing, every response must be *entirely* one version's output
    // (all logits 1.0 or all 2.0 for an all-ones input) — a torn weight
    // load would produce a mix.
    let registry = Arc::new(ModelRegistry::new());
    publish_scaled_identity(&registry, "swap", 1.0);
    let server = Server::start(
        Arc::clone(&registry),
        "swap",
        linear_net,
        &[4],
        ServerConfig::new(2, 256, BatchPolicy::new(4, 200)),
    )
    .unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let publisher = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = 2.0f32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                publish_scaled_identity(&registry, "swap", c);
                c = if c == 2.0 { 1.0 } else { 2.0 };
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let client = server.client();
            std::thread::spawn(move || {
                let x = Tensor::ones(&[4]);
                for _ in 0..100 {
                    let response = client.infer(x.clone(), None).unwrap();
                    let first = response.logits[0];
                    assert!(
                        response.logits.iter().all(|&v| v == first),
                        "torn weights: logits {:?} mix model versions",
                        response.logits
                    );
                    assert!(
                        first == 1.0 || first == 2.0,
                        "logit {first} does not correspond to any published version"
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    publisher.join().unwrap();
    server.shutdown();
}

#[test]
fn hot_swap_picks_up_new_versions_between_batches() {
    let registry = Arc::new(ModelRegistry::new());
    let v1 = publish_scaled_identity(&registry, "m", 1.0);
    let server = Server::start(
        Arc::clone(&registry),
        "m",
        linear_net,
        &[4],
        ServerConfig::new(1, 16, BatchPolicy::batch_of_one()),
    )
    .unwrap();
    let client = server.client();
    let r1 = client.infer(Tensor::ones(&[4]), None).unwrap();
    assert_eq!(r1.logits, vec![1.0; 4]);
    assert_eq!(r1.model_version, v1);

    let v2 = publish_scaled_identity(&registry, "m", 3.0);
    // the swap happens between batches; poll until the worker noticed
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let r = client.infer(Tensor::ones(&[4]), None).unwrap();
        if r.model_version == v2 {
            assert_eq!(r.logits, vec![3.0; 4]);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker never hot-swapped to version {v2}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    server.shutdown();
}

#[test]
fn shape_mismatch_and_unknown_model_fail_actionably() {
    let registry = Arc::new(ModelRegistry::new());
    publish_scaled_identity(&registry, "id", 1.0);
    // unknown model name
    let err = Server::start(
        Arc::clone(&registry),
        "nope",
        linear_net,
        &[4],
        ServerConfig::default(),
    )
    .err()
    .expect("unknown model must not start");
    assert!(err.to_string().contains("no published version"));
    // wrong-architecture checkpoint under the requested name
    let mut rng = StdRng::seed_from_u64(9);
    let mut wrong = Network::new(Sequential::new(vec![Box::new(Linear::new(7, 7, &mut rng))]));
    registry.publish("wrong", &mut wrong);
    let err = Server::start(
        Arc::clone(&registry),
        "wrong",
        linear_net,
        &[4],
        ServerConfig::default(),
    )
    .err()
    .expect("architecture mismatch must not start");
    assert!(err.to_string().contains("does not load"));
    // shape mismatch at submission
    let server = Server::start(
        Arc::clone(&registry),
        "id",
        linear_net,
        &[4],
        ServerConfig::default(),
    )
    .unwrap();
    match server.client().infer(Tensor::ones(&[5]), None) {
        Err(ServeError::ShapeMismatch { expected, got }) => {
            assert_eq!(expected, vec![4]);
            assert_eq!(got, vec![5]);
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    server.shutdown();
}

/// A layer that panics when any input element equals the poison value —
/// the deterministic way to blow up one specific batch.
struct PanicOn(f32);

impl Layer for PanicOn {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        if input.as_slice().contains(&self.0) {
            panic!("poison value hit");
        }
        input.clone()
    }
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }
    fn name(&self) -> &'static str {
        "panic_on"
    }
}

#[test]
fn worker_panic_fails_the_batch_but_not_the_server() {
    let poison = 1234.5f32;
    let make = move || {
        let mut rng = StdRng::seed_from_u64(0);
        Network::new(Sequential::new(vec![
            Box::new(PanicOn(poison)),
            Box::new(Linear::new(4, 4, &mut rng)),
        ]))
    };
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("p", &mut make());
    let server = Server::start(
        Arc::clone(&registry),
        "p",
        make,
        &[4],
        ServerConfig::new(1, 16, BatchPolicy::batch_of_one()),
    )
    .unwrap();
    let client = server.client();
    // the poisoned request must fail with an error, not hang forever…
    match client.infer(Tensor::full(&[4], poison), None) {
        Err(ServeError::WorkerPanicked) => {}
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // …and the supervisor must respawn the worker to serve the next request
    let ok = client.infer(Tensor::full(&[4], 1.0), None).unwrap();
    assert_eq!(ok.logits.len(), 4);
    let metrics = server.metrics();
    assert_eq!(metrics.worker_panics, 1);
    assert_eq!(metrics.worker_restarts, 1);
    server.shutdown();
}

#[test]
fn injected_worker_panic_recovers_via_supervisor_respawn() {
    // the chaos hook: no special layers, a healthy model — the fuse alone
    // kills the worker mid-batch and the supervisor brings the pool back
    let registry = Arc::new(ModelRegistry::new());
    publish_scaled_identity(&registry, "id", 1.0);
    let server = Server::start(
        Arc::clone(&registry),
        "id",
        linear_net,
        &[4],
        ServerConfig::new(1, 16, BatchPolicy::batch_of_one()),
    )
    .unwrap();
    let client = server.client();
    server.inject_worker_panic();
    match client.infer(Tensor::ones(&[4]), None) {
        Err(ServeError::WorkerPanicked) => {}
        other => panic!("expected WorkerPanicked from the fuse, got {other:?}"),
    }
    // respawned worker serves the next request with the same model
    let ok = client.infer(Tensor::full(&[4], 2.0), None).unwrap();
    assert_eq!(ok.logits, vec![2.0; 4]);
    let metrics = server.metrics();
    assert_eq!(metrics.worker_panics, 1);
    assert_eq!(metrics.worker_restarts, 1);
    server.shutdown();
}

#[test]
fn exhausted_restart_budget_kills_the_pool_without_hanging_anyone() {
    let registry = Arc::new(ModelRegistry::new());
    publish_scaled_identity(&registry, "id", 1.0);
    let mut config = ServerConfig::new(1, 16, BatchPolicy::batch_of_one());
    config.max_worker_restarts = 0; // first panic is fatal for the pool
    let server = Server::start(Arc::clone(&registry), "id", linear_net, &[4], config).unwrap();
    let client = server.client();
    server.inject_worker_panic();
    match client.infer(Tensor::ones(&[4]), None) {
        Err(ServeError::WorkerPanicked) => {}
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // with zero restarts the pool is dead; the supervisor must close the
    // queue so clients get a typed error instead of waiting forever
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match client.infer(Tensor::ones(&[4]), None) {
            Err(ServeError::Shutdown) => break,
            Err(ServeError::WorkerPanicked) => {} // raced the supervisor's close
            Ok(_) => panic!("a dead pool must not serve"),
            Err(other) => panic!("unexpected error {other:?}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never closed the queue after the pool died"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(server.metrics().worker_restarts, 0);
    server.shutdown();
}

#[test]
fn brownout_sheds_low_slack_requests_under_sustained_overload() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("slow", &mut slow_net(Duration::from_millis(30)));
    let mut config = ServerConfig::new(1, 8, BatchPolicy::batch_of_one());
    config.brownout.high_watermark = 0.5; // 4 of 8 queued = overload
    config.brownout.enter_ticks = 2;
    config.brownout.exit_ticks = 1000; // stay browned out for the test
    config.brownout.min_slack = Duration::from_secs(60); // shed every deadline'd request
    let server = Server::start(
        Arc::clone(&registry),
        "slow",
        || slow_net(Duration::from_millis(30)),
        &[4],
        config,
    )
    .unwrap();
    let client = server.client();

    // occupy the worker (no deadline: never sheddable), then pile up six
    // deadline'd requests — depth 6 ≥ watermark 4 triggers brownout within
    // a few supervisor ticks, after which they are shed, not executed
    let in_flight = client.submit(Tensor::ones(&[4]), None).unwrap();
    let doomed: Vec<_> = (0..6)
        .map(|_| {
            client
                .submit(Tensor::ones(&[4]), Some(Duration::from_secs(30)))
                .unwrap()
        })
        .collect();

    in_flight.wait().unwrap();
    let mut shed = 0;
    let mut served = 0;
    for p in doomed {
        match p.wait() {
            Ok(_) => served += 1,
            Err(ServeError::Shed { queue_depth: _ }) => shed += 1,
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert_eq!(shed + served, 6, "every request resolved");
    assert!(
        shed >= 1,
        "sustained overload must shed something (served {served})"
    );
    let metrics = server.metrics();
    assert_eq!(metrics.shed, shed);
    assert_eq!(metrics.brownout_entries, 1);
    server.shutdown();
}

#[test]
fn requests_without_deadlines_survive_brownout() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("slow", &mut slow_net(Duration::from_millis(20)));
    let mut config = ServerConfig::new(1, 8, BatchPolicy::batch_of_one());
    config.brownout.high_watermark = 0.25; // 2 queued = overload
    config.brownout.enter_ticks = 1;
    config.brownout.exit_ticks = 1000;
    config.brownout.min_slack = Duration::from_secs(60);
    let server = Server::start(
        Arc::clone(&registry),
        "slow",
        || slow_net(Duration::from_millis(20)),
        &[4],
        config,
    )
    .unwrap();
    let client = server.client();
    let pending: Vec<_> = (0..5)
        .map(|_| client.submit(Tensor::ones(&[4]), None).unwrap())
        .collect();
    // brownout certainly engages, but deadline-free requests are never shed
    for p in pending {
        p.wait().unwrap();
    }
    let metrics = server.metrics();
    assert_eq!(metrics.completed, 5);
    assert_eq!(metrics.shed, 0);
    server.shutdown();
}

#[test]
fn f16_replicas_serve_close_to_f32_outputs() {
    use hs_tensor::DType;
    // a non-trivial weight matrix so quantization actually rounds something
    let registry = Arc::new(ModelRegistry::new());
    let mut rng = StdRng::seed_from_u64(77);
    let mut published = Network::new(Sequential::new(vec![Box::new(Linear::new(4, 4, &mut rng))]));
    registry.publish("m", &mut published);

    let f32_server = Server::start(
        Arc::clone(&registry),
        "m",
        linear_net,
        &[4],
        ServerConfig::new(1, 16, BatchPolicy::batch_of_one()).with_dtype(DType::F32),
    )
    .unwrap();
    let f16_server = Server::start(
        Arc::clone(&registry),
        "m",
        linear_net,
        &[4],
        ServerConfig::new(1, 16, BatchPolicy::batch_of_one()).with_dtype(DType::F16),
    )
    .unwrap();

    let x = Tensor::full(&[4], 0.75);
    let expect = f32_server.client().infer(x.clone(), None).unwrap();
    let got = f16_server.client().infer(x, None).unwrap();
    let mut differs = false;
    for (a, b) in expect.logits.iter().zip(&got.logits) {
        assert!(
            (a - b).abs() <= 1e-2 * a.abs().max(1.0),
            "f16 replica drifted past 1e-2 rel: {a} vs {b}"
        );
        differs |= a != b;
    }
    // sanity: the f16 path really quantized (bit-identical logits would
    // mean the dtype conversion never happened)
    assert!(
        differs || expect.logits.iter().all(|&v| v == 0.0),
        "f16 replica produced bit-identical logits — did to_dtype run?"
    );
    f32_server.shutdown();
    f16_server.shutdown();
}

#[test]
fn shutdown_drains_accepted_requests_then_rejects() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("slow", &mut slow_net(Duration::from_millis(30)));
    let server = Server::start(
        Arc::clone(&registry),
        "slow",
        || slow_net(Duration::from_millis(30)),
        &[4],
        ServerConfig::new(1, 16, BatchPolicy::batch_of_one()),
    )
    .unwrap();
    let client = server.client();
    let accepted: Vec<_> = (0..3)
        .map(|_| client.submit(Tensor::ones(&[4]), None).unwrap())
        .collect();
    let shutdown_thread = std::thread::spawn(move || server.shutdown());
    // already-accepted requests complete during the drain
    for p in accepted {
        p.wait().unwrap();
    }
    shutdown_thread.join().unwrap();
    // and new submissions are refused
    match client.infer(Tensor::ones(&[4]), None) {
        Err(ServeError::Shutdown) => {}
        other => panic!("expected Shutdown, got {other:?}"),
    }
}
