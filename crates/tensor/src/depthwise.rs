//! Direct depthwise convolution: one spatial micro-kernel per channel, no
//! im2col materialisation.
//!
//! A depthwise convolution (`groups == in_channels == out_channels`) turns
//! the im2col→GEMM strategy into its worst case: per channel the "GEMM" is a
//! `1 × k² × (oh·ow)` product, so the engine spends more time writing and
//! re-reading the column matrix than multiplying. This module convolves each
//! channel directly: the kernel taps are iterated in the outer loops and the
//! inner loop runs contiguously along an output row
//! (`out_row[j] += w_tap * in_row[j + kj - pad]` for stride 1), which the
//! compiler auto-vectorises into packed FMA over the row. The optional
//! per-channel scale/shift + activation epilogue is applied in a final pass
//! over the freshly-computed (cache-hot) channel block, matching
//! [`crate::gemm_epilogue`]'s semantics exactly — including NaN behaviour,
//! since it reuses the same scalar [`crate::EpilogueAct::apply`].

use crate::gemm::Epilogue;

/// For one kernel tap offset `k` (row or column), the half-open range of
/// output coordinates whose sampled input coordinate `o*stride + k - pad`
/// lands inside `[0, extent)` — the boundary primitive shared by this
/// kernel and the im2col/col2im transforms in `hs-nn`.
#[inline]
pub fn valid_out_range(
    extent: usize,
    k: usize,
    stride: usize,
    pad: usize,
    out_len: usize,
) -> (usize, usize) {
    let lo = pad.saturating_sub(k).div_ceil(stride);
    let hi = if extent + pad > k {
        ((extent + pad - k).div_ceil(stride)).min(out_len)
    } else {
        0
    };
    (lo.min(hi), hi)
}

/// Direct depthwise convolution of one `[c, h, w]` sample with per-channel
/// `[c, k, k]` weights into a `[c, oh, ow]` output block
/// (`oh = (h + 2*pad - k)/stride + 1`, likewise `ow`).
///
/// * With `ep == Some(e)`: `out = e.act(e.scale[c] * conv + e.shift[c])`;
///   `bias` is ignored (folded into `shift` by the caller).
/// * With `ep == None`: `out = conv + bias[c]`.
///
/// The output block is fully overwritten. No scratch is needed — this is
/// the allocation-free backend for the depthwise layers of the mobile zoo.
///
/// # Panics
///
/// Panics if a slice is shorter than its shape contract.
#[allow(clippy::too_many_arguments)]
pub fn depthwise_conv2d(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    ep: Option<Epilogue<'_>>,
    out: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
) {
    assert!(stride >= 1 && k >= 1, "kernel and stride must be positive");
    assert!(
        h + 2 * pad >= k && w + 2 * pad >= k,
        "input too small for the kernel"
    );
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    assert!(input.len() >= c * h * w, "depthwise input too short");
    assert!(weights.len() >= c * k * k, "depthwise weights too short");
    assert!(out.len() >= c * oh * ow, "depthwise output too short");
    if let Some(e) = ep {
        assert!(
            e.scale.len() >= c && e.shift.len() >= c,
            "depthwise epilogue needs one scale/shift entry per channel"
        );
    } else {
        assert!(bias.len() >= c, "depthwise bias too short");
    }

    for ci in 0..c {
        let chan_in = &input[ci * h * w..(ci + 1) * h * w];
        let chan_w = &weights[ci * k * k..(ci + 1) * k * k];
        let chan_out = &mut out[ci * oh * ow..(ci + 1) * oh * ow];
        // the mobile zoo's one true depthwise shape gets a single-pass
        // micro-kernel: all nine taps accumulate in registers per output
        // element instead of nine read-modify-write sweeps over the row
        // (which dominate at the zoo's small spatial extents)
        if k == 3 && stride == 1 && pad == 1 && h >= 2 && w >= 2 {
            depthwise3x3_s1p1(chan_in, chan_w, chan_out, h, w);
        } else {
            depthwise_generic(chan_in, chan_w, chan_out, h, w, k, stride, pad, oh, ow);
        }
        // epilogue / bias over the cache-hot channel block
        match ep {
            Some(e) => {
                for v in chan_out.iter_mut() {
                    *v = e.apply_scalar(ci, *v);
                }
            }
            None => {
                let b = bias[ci];
                for v in chan_out.iter_mut() {
                    *v += b;
                }
            }
        }
    }
}

/// Single-pass 3×3 stride-1 pad-1 depthwise kernel for one channel:
/// `out` has the same `h × w` extent as the input. Interior rows unroll all
/// nine taps into one register accumulation per output element (the inner
/// column loop vectorises); the four borders run the tap-by-tap fallback.
fn depthwise3x3_s1p1(input: &[f32], wgt: &[f32], out: &mut [f32], h: usize, w: usize) {
    let (w00, w01, w02) = (wgt[0], wgt[1], wgt[2]);
    let (w10, w11, w12) = (wgt[3], wgt[4], wgt[5]);
    let (w20, w21, w22) = (wgt[6], wgt[7], wgt[8]);
    for oi in 1..h.saturating_sub(1) {
        let r0 = &input[(oi - 1) * w..oi * w];
        let r1 = &input[oi * w..(oi + 1) * w];
        let r2 = &input[(oi + 1) * w..(oi + 2) * w];
        let out_row = &mut out[oi * w..(oi + 1) * w];
        for j in 1..w - 1 {
            out_row[j] = w00 * r0[j - 1]
                + w01 * r0[j]
                + w02 * r0[j + 1]
                + w10 * r1[j - 1]
                + w11 * r1[j]
                + w12 * r1[j + 1]
                + w20 * r2[j - 1]
                + w21 * r2[j]
                + w22 * r2[j + 1];
        }
        // left/right padded columns: the out-of-image taps contribute zero
        out_row[0] =
            w01 * r0[0] + w02 * r0[1] + w11 * r1[0] + w12 * r1[1] + w21 * r2[0] + w22 * r2[1];
        out_row[w - 1] = w00 * r0[w - 2]
            + w01 * r0[w - 1]
            + w10 * r1[w - 2]
            + w11 * r1[w - 1]
            + w20 * r2[w - 2]
            + w21 * r2[w - 1];
    }
    // top and bottom padded rows through the generic tap loop
    for oi in [0, h - 1] {
        let out_row = &mut out[oi * w..(oi + 1) * w];
        for (j, o) in out_row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for r in 0..3 {
                let ii = oi as isize + r as isize - 1;
                if ii < 0 || ii >= h as isize {
                    continue;
                }
                for cc in 0..3 {
                    let jj = j as isize + cc as isize - 1;
                    if jj >= 0 && jj < w as isize {
                        acc += wgt[r * 3 + cc] * input[ii as usize * w + jj as usize];
                    }
                }
            }
            *o = acc;
        }
    }
}

/// The generic tap-by-tap depthwise body for one channel (any kernel size,
/// stride or padding): accumulates the raw convolution into `out`, whose
/// padding fringe stays at the zero established by the initial fill.
#[allow(clippy::too_many_arguments)]
fn depthwise_generic(
    chan_in: &[f32],
    chan_w: &[f32],
    chan_out: &mut [f32],
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
) {
    chan_out.fill(0.0);
    for ki in 0..k {
        let (oi_lo, oi_hi) = valid_out_range(h, ki, stride, pad, oh);
        for kj in 0..k {
            let wv = chan_w[ki * k + kj];
            let (oj_lo, oj_hi) = valid_out_range(w, kj, stride, pad, ow);
            if oj_hi <= oj_lo {
                continue;
            }
            for oi in oi_lo..oi_hi {
                let ii = oi * stride + ki - pad;
                let out_row = &mut chan_out[oi * ow + oj_lo..oi * ow + oj_hi];
                if stride == 1 {
                    let jj0 = oj_lo + kj - pad;
                    let in_row = &chan_in[ii * w + jj0..ii * w + jj0 + out_row.len()];
                    for (o, &x) in out_row.iter_mut().zip(in_row.iter()) {
                        *o += wv * x;
                    }
                } else {
                    let in_row = &chan_in[ii * w..(ii + 1) * w];
                    for (idx, o) in out_row.iter_mut().enumerate() {
                        *o += wv * in_row[(oj_lo + idx) * stride + kj - pad];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::EpilogueAct;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Scalar per-pixel depthwise reference.
    #[allow(clippy::too_many_arguments)]
    fn reference(
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        c: usize,
        h: usize,
        w: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Vec<f32> {
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (w + 2 * pad - k) / stride + 1;
        let mut out = vec![0.0f32; c * oh * ow];
        for ci in 0..c {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = bias[ci];
                    for ki in 0..k {
                        for kj in 0..k {
                            let ii = (oi * stride + ki) as isize - pad as isize;
                            let jj = (oj * stride + kj) as isize - pad as isize;
                            if ii >= 0 && ii < h as isize && jj >= 0 && jj < w as isize {
                                acc += weights[(ci * k + ki) * k + kj]
                                    * input[ci * h * w + ii as usize * w + jj as usize];
                            }
                        }
                    }
                    out[(ci * oh + oi) * ow + oj] = acc;
                }
            }
        }
        out
    }

    fn rand_vec(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn matches_reference_across_shapes() {
        let mut rng = StdRng::seed_from_u64(21);
        for (c, h, w, k, stride, pad) in [
            (1usize, 5usize, 5usize, 3usize, 1usize, 1usize),
            (6, 7, 9, 3, 1, 1),
            (4, 8, 8, 3, 2, 1),
            (3, 6, 6, 5, 1, 2),
            (5, 9, 7, 5, 2, 2),
            (2, 4, 4, 1, 1, 0), // pointwise-depthwise degenerate case
            (2, 6, 5, 3, 1, 0), // no padding
        ] {
            let input = rand_vec(&mut rng, c * h * w);
            let weights = rand_vec(&mut rng, c * k * k);
            let bias = rand_vec(&mut rng, c);
            let expect = reference(&input, &weights, &bias, c, h, w, k, stride, pad);
            let mut got = vec![7.0f32; expect.len()]; // stale contents must be overwritten
            depthwise_conv2d(
                &input, &weights, &bias, None, &mut got, c, h, w, k, stride, pad,
            );
            for (i, (e, g)) in expect.iter().zip(got.iter()).enumerate() {
                assert!(
                    (e - g).abs() <= 1e-5 * e.abs().max(1.0),
                    "c={c} {h}x{w} k={k} s={stride} p={pad}: element {i}: {e} vs {g}"
                );
            }
        }
    }

    #[test]
    fn epilogue_matches_scalar_semantics_including_nan() {
        let mut rng = StdRng::seed_from_u64(22);
        let (c, h, w, k, stride, pad) = (3usize, 6usize, 6usize, 3usize, 1usize, 1usize);
        let mut input = rand_vec(&mut rng, c * h * w);
        input[h * w + 8] = f32::NAN; // poison one pixel of channel 1
        let weights = rand_vec(&mut rng, c * k * k);
        let zero_bias = vec![0.0f32; c];
        let scale = rand_vec(&mut rng, c);
        let shift = rand_vec(&mut rng, c);
        let plain = reference(&input, &weights, &zero_bias, c, h, w, k, stride, pad);
        for act in [
            EpilogueAct::None,
            EpilogueAct::Relu,
            EpilogueAct::LeakyRelu(0.1),
            EpilogueAct::Relu6,
        ] {
            let ep = Epilogue {
                scale: &scale,
                shift: &shift,
                act,
            };
            let mut got = vec![0.0f32; plain.len()];
            depthwise_conv2d(
                &input,
                &weights,
                &zero_bias,
                Some(ep),
                &mut got,
                c,
                h,
                w,
                k,
                stride,
                pad,
            );
            for (i, (p, g)) in plain.iter().zip(got.iter()).enumerate() {
                let ci = i / (h * w);
                let e = act.apply(p * scale[ci] + shift[ci]);
                assert_eq!(
                    e.is_nan(),
                    g.is_nan(),
                    "{act:?}: element {i}: NaN divergence {e} vs {g}"
                );
                if !e.is_nan() {
                    assert!(
                        (e - g).abs() <= 1e-5 * e.abs().max(1.0),
                        "{act:?}: element {i}: {e} vs {g}"
                    );
                }
            }
        }
    }
}
