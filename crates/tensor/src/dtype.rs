//! Element dtypes for tensor storage, plus the scalar conversion kernels
//! (IEEE 754 binary16 and symmetric per-tensor int8) the quantized storage
//! and the GEMM convert-on-pack paths are built on.
//!
//! The f16 conversions are hand-rolled bit manipulation (no external
//! crates): `f32 -> f16` rounds to nearest-even exactly like hardware
//! `VCVTPS2PH`, and `f16 -> f32` is exact, so a decode → encode round trip
//! preserves every non-NaN bit pattern (pinned by an exhaustive test over
//! all 65536 half-precision values).

/// Element type of a tensor's storage.
///
/// `F32` is the compute dtype everywhere — `F16` and `I8` are *storage*
/// dtypes for inference weights: the GEMM packing routines widen them back
/// to `f32` lanes while packing, so accumulation always happens in `f32`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// 32-bit IEEE float — the native compute type.
    #[default]
    F32,
    /// 16-bit IEEE float (binary16) weight storage, widened on pack.
    F16,
    /// Symmetric per-tensor quantized 8-bit integers plus one `f32` scale.
    I8,
}

impl DType {
    /// Bytes per element (the `I8` scale is amortised over the tensor).
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
            DType::I8 => 1,
        }
    }

    /// Lower-case canonical name (`"f32"` / `"f16"` / `"i8"`).
    pub fn as_str(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::I8 => "i8",
        }
    }

    /// Parses a dtype name as written by [`DType::as_str`]
    /// (case-insensitive). `None` for anything else.
    pub fn parse(s: &str) -> Option<DType> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f32" => Some(DType::F32),
            "f16" => Some(DType::F16),
            "i8" => Some(DType::I8),
            _ => None,
        }
    }

    /// Reads the `HS_DTYPE` environment override: `None` when unset or
    /// unparseable (callers fall back to their own default).
    pub fn from_env() -> Option<DType> {
        std::env::var("HS_DTYPE")
            .ok()
            .and_then(|v| DType::parse(&v))
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Converts one IEEE binary16 bit pattern to the exactly-representable
/// `f32` value (every finite f16 is exact in f32; NaN payloads are widened
/// into the f32 mantissa).
#[inline]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let em = (h & 0x7fff) as u32;
    if em >= 0x7c00 {
        // infinity / NaN: max out the f32 exponent, shift the payload up
        return f32::from_bits(sign | 0x7f80_0000 | ((em & 0x03ff) << 13));
    }
    if em < 0x0400 {
        // zero / subnormal: the mantissa counts units of 2^-24
        let mag = em as f32 * f32::from_bits(0x3380_0000); // 2^-24
        return if sign != 0 { -mag } else { mag };
    }
    // normal: rebias the exponent (15 -> 127 means adding 112 << 10)
    f32::from_bits(sign | ((em + 0x1c000) << 13))
}

/// Converts an `f32` to the nearest IEEE binary16 bit pattern
/// (round-to-nearest-even, overflow to infinity, NaN to a quiet NaN).
#[inline]
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7fff_ffff;
    if abs > 0x7f80_0000 {
        // NaN: quiet, canonical payload
        return sign | 0x7e00;
    }
    if abs >= 0x4780_0000 {
        // 65520 rounds up past f16::MAX; everything here becomes infinity
        return sign | 0x7c00;
    }
    let e = (abs >> 23) as i32; // biased f32 exponent
    if e < 102 {
        // below 2^-25: underflows to (signed) zero even after rounding
        return sign;
    }
    let m = (abs & 0x007f_ffff) | 0x0080_0000; // implicit leading 1
    if e < 113 {
        // subnormal f16: shift the full significand into place, RNE
        let shift = (113 - e) + 13;
        let q = m >> shift;
        let rem = m & ((1 << shift) - 1);
        let half = 1 << (shift - 1);
        let round = (rem > half || (rem == half && (q & 1) == 1)) as u32;
        return sign | (q + round) as u16;
    }
    // normal: 10 explicit mantissa bits, RNE on the dropped 13
    let he = (e - 112) as u32;
    let q = (he << 10) | ((m & 0x007f_ffff) >> 13);
    let rem = m & 0x1fff;
    let round = (rem > 0x1000 || (rem == 0x1000 && (q & 1) == 1)) as u32;
    // a mantissa carry naturally increments the exponent; at the very top
    // (65504 + carry) it lands exactly on the infinity encoding
    sign | (q + round) as u16
}

/// Symmetric per-tensor int8 scale: `max |x| / 127`, or `1.0` for an
/// all-zero (or empty) tensor so dequantisation stays well-defined.
pub fn i8_scale(data: &[f32]) -> f32 {
    let amax = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if amax > 0.0 && amax.is_finite() {
        amax / 127.0
    } else {
        1.0
    }
}

/// Quantises one value with the given symmetric scale (round half away
/// from zero, clamped to `[-127, 127]` so the range stays symmetric).
#[inline]
pub fn f32_to_i8(v: f32, scale: f32) -> i8 {
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_names_round_trip() {
        for dt in [DType::F32, DType::F16, DType::I8] {
            assert_eq!(DType::parse(dt.as_str()), Some(dt));
            assert_eq!(dt.to_string(), dt.as_str());
        }
        assert_eq!(DType::parse("F16"), Some(DType::F16));
        assert_eq!(DType::parse("bf16"), None);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::I8.size_bytes(), 1);
    }

    #[test]
    fn f16_decode_matches_known_values() {
        assert_eq!(f16_bits_to_f32(0x0000), 0.0);
        assert_eq!(f16_bits_to_f32(0x8000), -0.0);
        assert_eq!(f16_bits_to_f32(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f32(0xc000), -2.0);
        assert_eq!(f16_bits_to_f32(0x7bff), 65504.0); // f16::MAX
        assert_eq!(f16_bits_to_f32(0x0001), 5.960_464_5e-8); // smallest subnormal
        assert_eq!(f16_bits_to_f32(0x0400), 6.103_515_6e-5); // smallest normal
        assert_eq!(f16_bits_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0xfc00), f32::NEG_INFINITY);
        assert!(f16_bits_to_f32(0x7e00).is_nan());
    }

    #[test]
    fn f16_encode_matches_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff);
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00); // ties to infinity
        assert_eq!(f32_to_f16_bits(1e9), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_bits(f32::NAN) & 0x7fff, 0x7e00);
        // RNE at the mantissa midpoint: 1 + 2^-11 is exactly halfway
        // between 1.0 and the next f16 (1 + 2^-10); even mantissa wins
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_488_281_25), 0x3c00);
        // 2^-25 is halfway between 0 and the smallest subnormal -> 0 (even)
        assert_eq!(f32_to_f16_bits(f32::from_bits(0x3300_0000)), 0x0000);
        // just above the midpoint rounds up to the smallest subnormal
        assert_eq!(f32_to_f16_bits(f32::from_bits(0x3300_0001)), 0x0001);
    }

    #[test]
    fn f16_decode_encode_round_trips_every_pattern() {
        // every f16 is exactly representable in f32, so decode -> encode
        // must reproduce the input bits for all non-NaN patterns
        for h in 0..=u16::MAX {
            let v = f16_bits_to_f32(h);
            if v.is_nan() {
                assert_eq!(f32_to_f16_bits(v) & 0x7c00, 0x7c00, "{h:#06x}");
                continue;
            }
            assert_eq!(f32_to_f16_bits(v), h, "{h:#06x} decoded to {v}");
        }
    }

    #[test]
    fn f16_encode_is_nearest() {
        // sweep a range of f32 values and verify the encoded f16 is at
        // least as close as both neighbours
        for i in 0..10_000u32 {
            let v = f32::from_bits(0x3800_0000 + i * 7919); // [~3e-5, ...)
            let h = f32_to_f16_bits(v);
            let dec = f16_bits_to_f32(h);
            let err = (dec - v).abs();
            for nb in [h.wrapping_sub(1), h.wrapping_add(1)] {
                let nv = f16_bits_to_f32(nb);
                if nv.is_finite() {
                    assert!(
                        (nv - v).abs() >= err,
                        "{v}: {h:#06x} (err {err}) vs {nb:#06x} (err {})",
                        (nv - v).abs()
                    );
                }
            }
        }
    }

    #[test]
    fn i8_quantisation_is_symmetric_and_bounded() {
        let data = [-3.0f32, -1.5, 0.0, 0.75, 3.0];
        let scale = i8_scale(&data);
        assert!((scale - 3.0 / 127.0).abs() < 1e-9);
        for &v in &data {
            let q = f32_to_i8(v, scale);
            assert!((-127..=127).contains(&(q as i32)));
            let back = q as f32 * scale;
            assert!(
                (back - v).abs() <= scale * 0.5 + 1e-6,
                "{v} -> {q} -> {back}"
            );
        }
        // extremes map to the full range
        assert_eq!(f32_to_i8(3.0, scale), 127);
        assert_eq!(f32_to_i8(-3.0, scale), -127);
        // degenerate all-zero tensor gets the identity scale
        assert_eq!(i8_scale(&[0.0, 0.0]), 1.0);
        assert_eq!(i8_scale(&[]), 1.0);
    }
}
