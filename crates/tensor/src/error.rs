//! Error type shared by all fallible tensor operations.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and shape-sensitive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape dims.
    ShapeDataMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors participating in a binary operation have incompatible shapes.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor rank.
        rank: usize,
    },
    /// The operation requires a specific rank (e.g. matmul requires rank 2).
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape expects {expected} elements but {actual} were provided"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "incompatible shapes {left:?} and {right:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected} but tensor has rank {actual}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeDataMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(err.to_string().contains('4'));
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
