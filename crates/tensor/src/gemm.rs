//! The high-performance GEMM kernel layer.
//!
//! This module is the compute core every hot path in the workspace funnels
//! into: [`Tensor::matmul`](crate::Tensor::matmul), the im2col convolution in
//! `hs-nn`, and the dense layers. It implements the classic BLIS/GotoBLAS
//! decomposition:
//!
//! * the `k` dimension is split into `KC`-deep panels,
//! * `B` panels are packed into `NR`-wide column strips,
//! * `A` panels are packed into `MR`-tall row tiles (column-major inside the
//!   tile so the micro-kernel reads both packs sequentially),
//! * an `MR x NR` register-tiled micro-kernel does all the flops,
//! * row blocks fan out across the shared [`hs_parallel`] pool when the
//!   problem is big enough and we are not already inside a pool task.
//!
//! Three micro-kernels are selected **at runtime** (the build stays a plain
//! portable `x86-64`/other target — no `-C target-cpu` required):
//!
//! * AVX-512F: 8x48 tile, 24 zmm accumulators,
//! * AVX2+FMA: 8x48 tile processed as two 4x48 half-tiles of ymm registers,
//! * portable: the same 8x48 tile in autovectorisable scalar code.
//!
//! All edges are handled by zero-padding the packs, so every tile runs the
//! full-speed kernel; partial tiles are written out through a small bounce
//! buffer. Unlike the seed's i-k-j loop there is **no** `== 0.0` skip branch:
//! `0 * NaN` correctly stays `NaN` and the inner loop stays branch-free.
//!
//! Packing buffers live in a thread-local [`GemmScratch`], so steady-state
//! GEMM calls allocate nothing.
//!
//! # Safety
//!
//! The SIMD micro-kernels are the only `unsafe` code in this crate. They are
//! `#[target_feature]` functions called strictly behind the corresponding
//! `is_x86_feature_detected!` check, and every pointer they touch derives
//! from a slice whose bounds are asserted in `run_kernel_direct` immediately
//! before the call.

#![allow(unsafe_code)]
// the register-tiled micro-kernels index fixed-size accumulator arrays by
// design; iterator chains there obscure the tiling and hurt codegen
#![allow(clippy::needless_range_loop)]

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;
use std::cell::RefCell;

/// Activation applied by a GEMM [`Epilogue`] after the scale/shift step.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum EpilogueAct {
    /// Identity: the affine result is stored unchanged.
    #[default]
    None,
    /// `max(0, x)`.
    Relu,
    /// `x` for positive inputs, `slope * x` otherwise.
    LeakyRelu(f32),
    /// `min(max(0, x), 6)` — the mobile-zoo clipped ReLU.
    Relu6,
}

impl EpilogueAct {
    /// Applies the activation to a single value (the scalar reference the
    /// SIMD store loops must match, including on NaN: ReLU maps NaN to 0
    /// like `f32::max`, LeakyReLU and ReLU6 propagate it like the
    /// corresponding unfused activation layers).
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            EpilogueAct::None => v,
            EpilogueAct::Relu => v.max(0.0),
            EpilogueAct::LeakyRelu(slope) => {
                if v > 0.0 {
                    v
                } else {
                    slope * v
                }
            }
            EpilogueAct::Relu6 => v.clamp(0.0, 6.0),
        }
    }
}

/// A fused GEMM epilogue: per-output-row affine transform followed by an
/// activation, applied inside the micro-kernel store loop on the final `k`
/// panel, so `y[i][j] = act(scale[i] * (A*B)[i][j] + shift[i])` costs no
/// extra pass over the output.
///
/// This is exactly the shape of an inference `Conv2d -> BatchNorm2d ->
/// activation` stack expressed as a GEMM over the im2col matrix: rows are
/// output channels, `scale = gamma / sqrt(var + eps)` and
/// `shift = beta - mean * scale + scale * bias` fold the batch-norm (and the
/// convolution bias) into the store.
#[derive(Clone, Copy)]
pub struct Epilogue<'a> {
    /// Per-output-row multiplier (`len >= m`).
    pub scale: &'a [f32],
    /// Per-output-row addend (`len >= m`).
    pub shift: &'a [f32],
    /// Activation applied after the affine step.
    pub act: EpilogueAct,
}

impl<'a> Epilogue<'a> {
    /// The epilogue re-based so row `rows` becomes row 0 (used when output
    /// row bands are dispatched to pool tasks that index from zero).
    fn offset_rows(&self, rows: usize) -> Epilogue<'a> {
        Epilogue {
            scale: &self.scale[rows..],
            shift: &self.shift[rows..],
            act: self.act,
        }
    }

    /// Applies the epilogue to one scalar at output row `row` (shared with
    /// the Winograd and depthwise backends, whose store loops are scalar).
    #[inline]
    pub(crate) fn apply_scalar(&self, row: usize, v: f32) -> f32 {
        self.act.apply(v * self.scale[row] + self.shift[row])
    }
}

/// Accumulates one bounce-buffer row into `dst`, applying the epilogue for
/// output row `row` when present — the shared store step of every
/// ragged-tile path (where the kernels cannot be handed a full `MR` rows of
/// scale/shift).
#[inline]
fn store_edge_row(dst: &mut [f32], src: &[f32], row: usize, ep: Option<Epilogue<'_>>) {
    match ep {
        None => {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
        Some(e) => {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d = e.apply_scalar(row, *d + s);
            }
        }
    }
}

/// Tile-local epilogue view handed to the SIMD micro-kernels: raw pointers
/// pre-offset to the tile's first output row, valid for `MR` rows.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
struct KernelEpilogue {
    scale: *const f32,
    shift: *const f32,
    act: EpilogueAct,
}

/// Rows per micro-kernel tile.
pub const MR: usize = 8;
/// Columns per micro-kernel tile.
pub const NR: usize = 48;
/// Depth of one packed `k` panel.
const KC: usize = 256;
/// `A`-block height in tiles: one block packs `MC_TILES * MR` rows.
const MC_TILES: usize = 64;
/// Problems below this flop count stay serial (pool dispatch costs more).
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 20;
/// Up to this many output rows, `B` is read in place instead of packed: a
/// packed panel would be reused at most `m / MR` times, too few to pay for
/// the packing traffic (the convolution GEMMs sit squarely in this regime).
const DIRECT_M_MAX: usize = 64;

/// Reusable packing buffers. One lives per thread (the `SCRATCH`
/// thread-local); parallel row-band tasks allocate their own short-lived
/// packs.
struct GemmScratch {
    apack: Vec<f32>,
    bpack: Vec<f32>,
    edge: Vec<f32>,
}

impl GemmScratch {
    const fn new() -> Self {
        GemmScratch {
            apack: Vec::new(),
            bpack: Vec::new(),
            edge: Vec::new(),
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<GemmScratch> = const { RefCell::new(GemmScratch::new()) };
    /// Staging buffer for the transposed operand of [`gemm_nt`]/[`gemm_tn`].
    /// Taken out of the cell (not borrowed) for the duration of the inner
    /// [`gemm`], since a parallel gemm may run unrelated pool tasks on this
    /// thread while waiting.
    static TRANSPOSE_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Which micro-kernel the running CPU supports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Isa {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Portable,
}

fn detect_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return Isa::Avx512;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Isa::Avx2;
        }
    }
    Isa::Portable
}

fn isa() -> Isa {
    use std::sync::OnceLock;
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(detect_isa)
}

// ---------------------------------------------------------------------------
// Micro-kernels: out[MR x NR] += apack (kc x MR) * b-window (kc rows)
//
// One kernel family, parameterised by the B row stride `ldb`: packed panels
// pass ldb = NR, the small-m path passes the source matrix's own stride so B
// is read in place.
// ---------------------------------------------------------------------------

/// AVX-512 micro-kernel reading `B` directly at row stride `ldb` (no
/// packing when `ldb` is the source stride; the packed path passes
/// `ldb = NR`). When `ep` is present the store loop applies the fused
/// per-row scale/shift + activation epilogue instead of a plain store.
///
/// # Safety
///
/// Caller must ensure `avx512f` is available, `apack` holds `kc * MR`
/// floats, rows `b[p*ldb .. p*ldb+NR]` for `p < kc` are in bounds,
/// `out` rows `out[i*ldc .. i*ldc+NR]` for `i < MR` are in bounds, and
/// `ep`'s scale/shift pointers (when present) are valid for `MR` reads.
/// There is **no alignment precondition**: every vector access is an
/// unaligned `loadu`/`storeu`, so any 4-byte-aligned `f32` slice works.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kernel_avx512_direct(
    apack: *const f32,
    b: *const f32,
    ldb: usize,
    out: *mut f32,
    kc: usize,
    ldc: usize,
    ep: Option<KernelEpilogue>,
) {
    let mut acc = [[_mm512_setzero_ps(); 3]; MR];
    let mut ap = apack;
    let mut bp = b;
    for _ in 0..kc {
        let b0 = _mm512_loadu_ps(bp);
        let b1 = _mm512_loadu_ps(bp.add(16));
        let b2 = _mm512_loadu_ps(bp.add(32));
        for i in 0..MR {
            let av = _mm512_set1_ps(*ap.add(i));
            acc[i][0] = _mm512_fmadd_ps(av, b0, acc[i][0]);
            acc[i][1] = _mm512_fmadd_ps(av, b1, acc[i][1]);
            acc[i][2] = _mm512_fmadd_ps(av, b2, acc[i][2]);
        }
        ap = ap.add(MR);
        bp = bp.add(ldb);
    }
    match ep {
        None => {
            for (i, acc_row) in acc.iter().enumerate() {
                for (v, acc_v) in acc_row.iter().enumerate() {
                    let ptr = out.add(i * ldc + v * 16);
                    _mm512_storeu_ps(ptr, _mm512_add_ps(_mm512_loadu_ps(ptr), *acc_v));
                }
            }
        }
        Some(e) => {
            let zero = _mm512_setzero_ps();
            for (i, acc_row) in acc.iter().enumerate() {
                let sc = _mm512_set1_ps(*e.scale.add(i));
                let sh = _mm512_set1_ps(*e.shift.add(i));
                for (v, acc_v) in acc_row.iter().enumerate() {
                    let ptr = out.add(i * ldc + v * 16);
                    let sum = _mm512_add_ps(_mm512_loadu_ps(ptr), *acc_v);
                    let mut val = _mm512_fmadd_ps(sum, sc, sh);
                    // branch-faithful forms of EpilogueAct::apply, so NaN
                    // behaves identically to the scalar path (compares are
                    // ordered: NaN lanes keep the "else" value)
                    val = match e.act {
                        EpilogueAct::None => val,
                        EpilogueAct::Relu => _mm512_max_ps(val, zero),
                        EpilogueAct::LeakyRelu(slope) => {
                            let gt = _mm512_cmp_ps_mask(val, zero, _CMP_GT_OQ);
                            let neg = _mm512_mul_ps(val, _mm512_set1_ps(slope));
                            _mm512_mask_blend_ps(gt, neg, val)
                        }
                        EpilogueAct::Relu6 => {
                            let six = _mm512_set1_ps(6.0);
                            let lt = _mm512_cmp_ps_mask(val, zero, _CMP_LT_OQ);
                            let gt = _mm512_cmp_ps_mask(val, six, _CMP_GT_OQ);
                            let clamped = _mm512_mask_blend_ps(lt, val, zero);
                            _mm512_mask_blend_ps(gt, clamped, six)
                        }
                    };
                    _mm512_storeu_ps(ptr, val);
                }
            }
        }
    }
}

/// AVX2+FMA twin of [`kernel_avx512_direct`].
///
/// # Safety
///
/// Same contract as [`kernel_avx512_direct`] — bounds as documented there,
/// no alignment requirement beyond `f32` (unaligned `loadu`/`storeu`
/// throughout) — requiring the `avx2` and `fma` ISA extensions instead.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_avx2_direct(
    apack: *const f32,
    b: *const f32,
    ldb: usize,
    out: *mut f32,
    kc: usize,
    ldc: usize,
    ep: Option<KernelEpilogue>,
) {
    for half in 0..2 {
        let mut acc = [[_mm256_setzero_ps(); 6]; 4];
        let mut ap = apack.add(half * 4);
        let mut bp = b;
        for _ in 0..kc {
            for i in 0..4 {
                let av = _mm256_set1_ps(*ap.add(i));
                for v in 0..6 {
                    acc[i][v] = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(v * 8)), acc[i][v]);
                }
            }
            ap = ap.add(MR);
            bp = bp.add(ldb);
        }
        match ep {
            None => {
                for (i, acc_row) in acc.iter().enumerate() {
                    for (v, acc_v) in acc_row.iter().enumerate() {
                        let ptr = out.add((half * 4 + i) * ldc + v * 8);
                        _mm256_storeu_ps(ptr, _mm256_add_ps(_mm256_loadu_ps(ptr), *acc_v));
                    }
                }
            }
            Some(e) => {
                let zero = _mm256_setzero_ps();
                for (i, acc_row) in acc.iter().enumerate() {
                    let row = half * 4 + i;
                    let sc = _mm256_set1_ps(*e.scale.add(row));
                    let sh = _mm256_set1_ps(*e.shift.add(row));
                    for (v, acc_v) in acc_row.iter().enumerate() {
                        let ptr = out.add(row * ldc + v * 8);
                        let sum = _mm256_add_ps(_mm256_loadu_ps(ptr), *acc_v);
                        let mut val = _mm256_fmadd_ps(sum, sc, sh);
                        // branch-faithful forms of EpilogueAct::apply (see
                        // the AVX-512 kernel for the NaN rationale)
                        val = match e.act {
                            EpilogueAct::None => val,
                            EpilogueAct::Relu => _mm256_max_ps(val, zero),
                            EpilogueAct::LeakyRelu(slope) => {
                                let gt = _mm256_cmp_ps(val, zero, _CMP_GT_OQ);
                                let neg = _mm256_mul_ps(val, _mm256_set1_ps(slope));
                                _mm256_blendv_ps(neg, val, gt)
                            }
                            EpilogueAct::Relu6 => {
                                let six = _mm256_set1_ps(6.0);
                                let lt = _mm256_cmp_ps(val, zero, _CMP_LT_OQ);
                                let gt = _mm256_cmp_ps(val, six, _CMP_GT_OQ);
                                let clamped = _mm256_blendv_ps(val, zero, lt);
                                _mm256_blendv_ps(clamped, six, gt)
                            }
                        };
                        _mm256_storeu_ps(ptr, val);
                    }
                }
            }
        }
    }
}

/// Portable twin of [`kernel_avx512_direct`].
fn kernel_portable_direct(
    apack: &[f32],
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    kc: usize,
    ldc: usize,
    ep: Option<Epilogue<'_>>,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let apack = &apack[..kc * MR];
    for p in 0..kc {
        let ap: &[f32; MR] = apack[p * MR..p * MR + MR].try_into().unwrap();
        let bp: &[f32; NR] = b[p * ldb..p * ldb + NR].try_into().unwrap();
        for i in 0..MR {
            let a_ip = ap[i];
            for j in 0..NR {
                acc[i][j] += a_ip * bp[j];
            }
        }
    }
    match ep {
        None => {
            for (i, acc_row) in acc.iter().enumerate() {
                let out_row = &mut out[i * ldc..i * ldc + NR];
                for j in 0..NR {
                    out_row[j] += acc_row[j];
                }
            }
        }
        Some(e) => {
            for (i, acc_row) in acc.iter().enumerate() {
                let (sc, sh) = (e.scale[i], e.shift[i]);
                let out_row = &mut out[i * ldc..i * ldc + NR];
                for j in 0..NR {
                    out_row[j] = e.act.apply((out_row[j] + acc_row[j]) * sc + sh);
                }
            }
        }
    }
}

/// Bounds-asserting dispatcher for the direct-`B` kernels. `ep`, when
/// present, must be pre-offset so its row 0 is this tile's first output row
/// and carry at least `MR` scale/shift entries.
#[allow(clippy::too_many_arguments)]
#[inline]
fn run_kernel_direct(
    which: Isa,
    apack: &[f32],
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    kc: usize,
    ldc: usize,
    ep: Option<Epilogue<'_>>,
) {
    assert!(apack.len() >= kc * MR, "A pack too short");
    assert!(
        kc == 0 || b.len() >= (kc - 1) * ldb + NR,
        "B window too short for a direct strip"
    );
    assert!(
        out.len() >= (MR - 1) * ldc + NR,
        "output window too short for an MRxNR tile"
    );
    if let Some(e) = ep {
        assert!(
            e.scale.len() >= MR && e.shift.len() >= MR,
            "epilogue scale/shift too short for an MR-row tile"
        );
    }
    match which {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe {
            // SAFETY: avx512f verified by `isa()`; lengths asserted above
            // (including MR epilogue rows when `ep` is present).
            kernel_avx512_direct(
                apack.as_ptr(),
                b.as_ptr(),
                ldb,
                out.as_mut_ptr(),
                kc,
                ldc,
                ep.map(|e| KernelEpilogue {
                    scale: e.scale.as_ptr(),
                    shift: e.shift.as_ptr(),
                    act: e.act,
                }),
            )
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            // SAFETY: avx2+fma verified by `isa()`; lengths asserted above
            // (including MR epilogue rows when `ep` is present).
            kernel_avx2_direct(
                apack.as_ptr(),
                b.as_ptr(),
                ldb,
                out.as_mut_ptr(),
                kc,
                ldc,
                ep.map(|e| KernelEpilogue {
                    scale: e.scale.as_ptr(),
                    shift: e.shift.as_ptr(),
                    act: e.act,
                }),
            )
        },
        Isa::Portable => kernel_portable_direct(apack, b, ldb, out, kc, ldc, ep),
    }
}

/// Packed-panel kernel dispatch: the packed layout is simply the direct
/// layout with row stride `NR`.
#[inline]
fn run_kernel(
    which: Isa,
    apack: &[f32],
    bpack: &[f32],
    out: &mut [f32],
    kc: usize,
    ldc: usize,
    ep: Option<Epilogue<'_>>,
) {
    run_kernel_direct(which, apack, bpack, NR, out, kc, ldc, ep);
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Packs `B[pc..pc+kc, :]` into `NR`-wide zero-padded strips:
/// `bpack[strip][p][j]` for `j < NR`.
fn pack_b(b: &[f32], bpack: &mut Vec<f32>, pc: usize, kc: usize, n: usize) {
    let n_strips = n.div_ceil(NR);
    bpack.clear();
    bpack.resize(n_strips * kc * NR, 0.0);
    for js in 0..n_strips {
        let j0 = js * NR;
        let nr = NR.min(n - j0);
        let dst = &mut bpack[js * kc * NR..(js + 1) * kc * NR];
        // the resize above zero-filled the buffer, which also provides the
        // zero padding on the ragged edge strip
        for p in 0..kc {
            let src = &b[(pc + p) * n + j0..(pc + p) * n + j0 + nr];
            dst[p * NR..p * NR + nr].copy_from_slice(src);
        }
    }
}

// ---------------------------------------------------------------------------
// Weight element views: convert-on-pack for quantized storage
// ---------------------------------------------------------------------------

/// A read-only view of a GEMM `A` operand whose elements widen to `f32` on
/// access. The packing routines are generic over this trait, so f16/i8
/// weights are converted *while being packed* — the micro-kernels and the
/// epilogue only ever see packed `f32` panels and accumulation stays `f32`.
pub(crate) trait WeightElems: Copy + Send + Sync {
    /// Number of elements in the view.
    fn len(&self) -> usize;
    /// Element `i`, widened to `f32`.
    fn at(&self, i: usize) -> f32;
    /// The view starting at element `start` (the generic twin of
    /// `&a[start..]`).
    fn offset(&self, start: usize) -> Self;
}

impl WeightElems for &[f32] {
    #[inline(always)]
    fn len(&self) -> usize {
        (**self).len()
    }
    #[inline(always)]
    fn at(&self, i: usize) -> f32 {
        self[i]
    }
    #[inline(always)]
    fn offset(&self, start: usize) -> Self {
        &self[start..]
    }
}

/// IEEE binary16 weight elements (raw bit patterns), widened on access.
#[derive(Clone, Copy)]
pub(crate) struct F16Elems<'a>(pub &'a [u16]);

impl WeightElems for F16Elems<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.0.len()
    }
    #[inline(always)]
    fn at(&self, i: usize) -> f32 {
        crate::dtype::f16_bits_to_f32(self.0[i])
    }
    #[inline(always)]
    fn offset(&self, start: usize) -> Self {
        F16Elems(&self.0[start..])
    }
}

/// Symmetric per-tensor int8 weight elements; the scale is folded in during
/// widening, so the packed panels carry real-valued weights.
#[derive(Clone, Copy)]
pub(crate) struct I8Elems<'a> {
    pub q: &'a [i8],
    pub scale: f32,
}

impl WeightElems for I8Elems<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.q.len()
    }
    #[inline(always)]
    fn at(&self, i: usize) -> f32 {
        self.q[i] as f32 * self.scale
    }
    #[inline(always)]
    fn offset(&self, start: usize) -> Self {
        I8Elems {
            q: &self.q[start..],
            scale: self.scale,
        }
    }
}

/// A borrowed GEMM weight operand of runtime dtype — the argument type of
/// the `_q` entry points ([`gemm_epilogue_q`], [`gemm_nt_q`], …). `F32`
/// routes to exactly the same code as the plain-slice entries; `F16`/`I8`
/// widen to `f32` inside the packing routines (convert-on-pack), so the
/// bandwidth saving comes from streaming half/quarter-width weights while
/// the arithmetic stays identical.
#[derive(Clone, Copy, Debug)]
pub enum WeightMat<'a> {
    /// Plain `f32` weights.
    F32(&'a [f32]),
    /// IEEE binary16 bit patterns.
    F16(&'a [u16]),
    /// Symmetric per-tensor int8 values plus their dequantisation scale.
    I8 {
        /// The quantized values.
        data: &'a [i8],
        /// The per-tensor dequantisation scale.
        scale: f32,
    },
}

impl WeightMat<'_> {
    /// Number of elements in the operand.
    pub fn len(&self) -> usize {
        match self {
            WeightMat::F32(s) => s.len(),
            WeightMat::F16(s) => s.len(),
            WeightMat::I8 { data, .. } => data.len(),
        }
    }

    /// Whether the operand holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element dtype.
    pub fn dtype(&self) -> crate::dtype::DType {
        match self {
            WeightMat::F32(_) => crate::dtype::DType::F32,
            WeightMat::F16(_) => crate::dtype::DType::F16,
            WeightMat::I8 { .. } => crate::dtype::DType::I8,
        }
    }

    /// Element `i`, widened to `f32` (used by the Winograd weight
    /// transform, which reads each weight exactly once per call — elsewhere
    /// widening happens inside the packing routines).
    #[inline(always)]
    pub fn at(&self, i: usize) -> f32 {
        match self {
            WeightMat::F32(s) => s[i],
            WeightMat::F16(s) => crate::dtype::f16_bits_to_f32(s[i]),
            WeightMat::I8 { data, scale } => data[i] as f32 * scale,
        }
    }

    /// The sub-range `[start, end)` of the operand (the runtime twin of
    /// `&w[start..end]`, used for grouped-conv per-group panels).
    pub fn slice(&self, start: usize, end: usize) -> WeightMat<'_> {
        match self {
            WeightMat::F32(s) => WeightMat::F32(&s[start..end]),
            WeightMat::F16(s) => WeightMat::F16(&s[start..end]),
            WeightMat::I8 { data, scale } => WeightMat::I8 {
                data: &data[start..end],
                scale: *scale,
            },
        }
    }
}

/// Dispatches a [`WeightMat`] to a monomorphised [`WeightElems`] body.
macro_rules! with_elems {
    ($w:expr, $a:ident => $body:expr) => {
        match $w {
            WeightMat::F32(s) => {
                let $a: &[f32] = s;
                $body
            }
            WeightMat::F16(s) => {
                let $a = F16Elems(s);
                $body
            }
            WeightMat::I8 { data, scale } => {
                let $a = I8Elems { q: data, scale };
                $body
            }
        }
    };
}

/// Packs `A[row0..row0+rows, pc..pc+kc]` into `MR`-tall zero-padded tiles,
/// column-major inside each tile: `apack[tile][p][i]`. Generic over the
/// element view: quantized weights widen to `f32` here, in the same pass
/// that rearranges them.
fn pack_a<A: WeightElems>(
    a: A,
    apack: &mut Vec<f32>,
    row0: usize,
    rows: usize,
    pc: usize,
    kc: usize,
    k: usize,
) {
    let m_tiles = rows.div_ceil(MR);
    apack.clear();
    apack.resize(m_tiles * kc * MR, 0.0);
    for it in 0..m_tiles {
        let i0 = row0 + it * MR;
        let mr = MR.min(row0 + rows - i0);
        let dst = &mut apack[it * kc * MR..(it + 1) * kc * MR];
        for p in 0..kc {
            for i in 0..mr {
                dst[p * MR + i] = a.at((i0 + i) * k + pc + p);
            }
            dst[p * MR + mr..(p + 1) * MR].fill(0.0);
        }
    }
}

/// Runs the packed tiles of one `A` block against every `B` strip,
/// accumulating into `out` (which must already hold the desired base value).
/// `ep` (pre-offset to `out`'s row coordinates) is applied at store time and
/// must only be passed on the final `k` panel.
#[allow(clippy::too_many_arguments)]
fn block_multiply(
    which: Isa,
    apack: &[f32],
    bpack: &[f32],
    edge: &mut Vec<f32>,
    out: &mut [f32],
    row0: usize,
    rows: usize,
    kc: usize,
    n: usize,
    ep: Option<Epilogue<'_>>,
) {
    let m_tiles = rows.div_ceil(MR);
    let n_strips = n.div_ceil(NR);
    for it in 0..m_tiles {
        let i0 = row0 + it * MR;
        let mr = MR.min(row0 + rows - i0);
        let ap = &apack[it * kc * MR..(it + 1) * kc * MR];
        for js in 0..n_strips {
            let j0 = js * NR;
            let nr = NR.min(n - j0);
            let bp = &bpack[js * kc * NR..(js + 1) * kc * NR];
            if mr == MR && nr == NR {
                run_kernel(
                    which,
                    ap,
                    bp,
                    &mut out[i0 * n + j0..],
                    kc,
                    n,
                    ep.map(|e| e.offset_rows(i0)),
                );
            } else {
                // partial tile: run full width into a bounce buffer, then
                // copy out the live mr x nr corner (epilogue applied
                // scalar-wise here, since the kernel would read MR rows of
                // scale/shift that a ragged edge does not have)
                edge.clear();
                edge.resize(MR * NR, 0.0);
                run_kernel(which, ap, bp, edge, kc, NR, None);
                for i in 0..mr {
                    let src = &edge[i * NR..i * NR + nr];
                    let dst = &mut out[(i0 + i) * n + j0..(i0 + i) * n + j0 + nr];
                    store_edge_row(dst, src, i0 + i, ep);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// `out = A * B` for row-major `A: [m, k]`, `B: [k, n]`, `out: [m, n]`.
///
/// Overwrites `out`. Operates on plain slices so callers can reuse output
/// buffers across calls; packing scratch is thread-local, so steady-state
/// calls do not allocate. Large problems fan out over row blocks on the
/// shared [`hs_parallel`] pool; calls made from inside a pool task stay
/// serial (the pool is already saturated).
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` contract.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(
        a.len() >= m * k,
        "A is {} elements, need m*k = {}",
        a.len(),
        m * k
    );
    assert!(
        b.len() >= k * n,
        "B is {} elements, need k*n = {}",
        b.len(),
        k * n
    );
    assert!(
        out.len() >= m * n,
        "out is {} elements, need m*n = {}",
        out.len(),
        m * n
    );
    out[..m * n].fill(0.0);
    gemm_acc(a, b, out, m, k, n);
}

/// `out += A * B`; otherwise identical to [`gemm`].
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` contract.
pub fn gemm_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_acc_q(WeightMat::F32(a), b, out, m, k, n);
}

/// [`gemm_acc`] over a runtime-dtype `A` operand: quantized weights widen
/// to `f32` inside the packing pass (convert-on-pack), the micro-kernels
/// and accumulation stay `f32`.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` contract.
pub fn gemm_acc_q(a: WeightMat<'_>, b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(
        a.len() >= m * k,
        "A is {} elements, need m*k = {}",
        a.len(),
        m * k
    );
    assert!(
        b.len() >= k * n,
        "B is {} elements, need k*n = {}",
        b.len(),
        k * n
    );
    assert!(
        out.len() >= m * n,
        "out is {} elements, need m*n = {}",
        out.len(),
        m * n
    );
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        return; // out += A(empty k) * B contributes nothing
    }
    let parallel = 2 * m * k * n >= PARALLEL_FLOP_THRESHOLD
        && m >= 2 * MR
        && hs_parallel::num_threads() > 1
        && !hs_parallel::inside_pool();
    with_elems!(a, aa => gemm_impl(aa, b, out, m, k, n, parallel, None));
}

/// `out = act(scale ⊙ (A * B) + shift)` with the per-row affine + activation
/// applied in the micro-kernel store loop of the final `k` panel — the fused
/// inference path for `Conv2d -> BatchNorm2d -> activation` stacks.
///
/// Overwrites `out` (any stale contents are ignored). Shares every other
/// property with [`gemm`]: slice-based, thread-local packing scratch,
/// row-block parallelism on big problems.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` contract or the
/// epilogue's scale/shift hold fewer than `m` entries.
pub fn gemm_epilogue(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: &Epilogue<'_>,
) {
    gemm_epilogue_q(WeightMat::F32(a), b, out, m, k, n, ep);
}

/// [`gemm_epilogue`] over a runtime-dtype `A` operand: the fused
/// scale/shift + activation path of the quantized inference tier. Quantized
/// weights widen to `f32` while being packed; the epilogue semantics are
/// identical to the `f32` entry.
///
/// # Panics
///
/// As [`gemm_epilogue`].
pub fn gemm_epilogue_q(
    a: WeightMat<'_>,
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: &Epilogue<'_>,
) {
    assert!(
        a.len() >= m * k,
        "A is {} elements, need m*k = {}",
        a.len(),
        m * k
    );
    assert!(
        b.len() >= k * n,
        "B is {} elements, need k*n = {}",
        b.len(),
        k * n
    );
    assert!(
        out.len() >= m * n,
        "out is {} elements, need m*n = {}",
        out.len(),
        m * n
    );
    assert!(ep.scale.len() >= m, "epilogue scale needs {m} entries");
    assert!(ep.shift.len() >= m, "epilogue shift needs {m} entries");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // A*B is all zeros; the epilogue still applies
        for (i, row) in out[..m * n].chunks_mut(n).enumerate() {
            row.fill(ep.apply_scalar(i, 0.0));
        }
        return;
    }
    out[..m * n].fill(0.0);
    let parallel = 2 * m * k * n >= PARALLEL_FLOP_THRESHOLD
        && m >= 2 * MR
        && hs_parallel::num_threads() > 1
        && !hs_parallel::inside_pool();
    with_elems!(a, aa => gemm_impl(aa, b, out, m, k, n, parallel, Some(*ep)));
}

/// Internal implementation with an explicit parallel/serial switch so tests
/// can exercise both paths regardless of the host's core count.
#[cfg(test)]
pub(crate) fn gemm_acc_impl(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    parallel: bool,
) {
    gemm_impl(a, b, out, m, k, n, parallel, None);
}

/// The blocked GEMM core behind [`gemm_acc`] and [`gemm_epilogue`]. `ep` is
/// applied at store time on the final `k` panel only, so every output
/// element is transformed exactly once. Generic over the `A` element view:
/// quantized weights widen inside [`pack_a`].
#[allow(clippy::too_many_arguments)]
fn gemm_impl<A: WeightElems>(
    a: A,
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    parallel: bool,
    ep: Option<Epilogue<'_>>,
) {
    let which = isa();
    // balance the k panels: k = 288 runs as 144+144, not 256+32 (a short
    // trailing panel wastes micro-kernel efficiency on its store phase)
    let kc_target = k.div_ceil(k.div_ceil(KC)).max(1);
    if !parallel {
        if m <= DIRECT_M_MAX {
            gemm_small_m(which, a, b, out, m, k, n, kc_target, ep);
        } else {
            SCRATCH.with(|cell| {
                let scratch = &mut *cell.borrow_mut();
                let mut pc = 0;
                while pc < k {
                    let kc = kc_target.min(k - pc);
                    let ep_panel = if pc + kc >= k { ep } else { None };
                    pack_b(b, &mut scratch.bpack, pc, kc, n);
                    let mut row0 = 0;
                    while row0 < m {
                        let rows = (MC_TILES * MR).min(m - row0);
                        pack_a(a, &mut scratch.apack, row0, rows, pc, kc, k);
                        let (apack, bpack) = (&scratch.apack, &scratch.bpack);
                        block_multiply(
                            which,
                            apack,
                            bpack,
                            &mut scratch.edge,
                            out,
                            row0,
                            rows,
                            kc,
                            n,
                            ep_panel,
                        );
                        row0 += rows;
                    }
                    pc += kc;
                }
            });
        }
        return;
    }

    // Parallel path: per KC panel, pack B once (shared read-only), then give
    // each pool task a disjoint band of output rows. Tasks pack their own A
    // tiles into short-lived local buffers.
    let threads = hs_parallel::num_threads();
    let tiles = m.div_ceil(MR);
    let tiles_per_band = tiles.div_ceil(threads).max(1);
    let band_rows = tiles_per_band * MR;
    let mut bpack_shared = Vec::new();
    let mut pc = 0;
    while pc < k {
        let kc = kc_target.min(k - pc);
        let ep_panel = if pc + kc >= k { ep } else { None };
        pack_b(b, &mut bpack_shared, pc, kc, n);
        let bpack = &bpack_shared;
        hs_parallel::scope(|s| {
            for (band_idx, out_band) in out[..m * n].chunks_mut(band_rows * n).enumerate() {
                s.spawn(move || {
                    let row0 = band_idx * band_rows;
                    let rows = out_band.len() / n;
                    // bands index their output from row 0, so the epilogue's
                    // row coordinates are re-based to the band start
                    let ep_band = ep_panel.map(|e| e.offset_rows(row0));
                    let mut apack = Vec::new();
                    let mut edge = Vec::new();
                    let mut r = 0;
                    while r < rows {
                        let block = (MC_TILES * MR).min(rows - r);
                        pack_a(a, &mut apack, row0 + r, block, pc, kc, k);
                        // out_band is indexed from its own row 0
                        block_multiply(
                            which, &apack, bpack, &mut edge, out_band, r, block, kc, n, ep_band,
                        );
                        r += block;
                    }
                });
            }
        });
        pc += kc;
    }
}

/// The small-`m` GEMM: `A` is packed (it is reused across every `B` strip),
/// `B` full-width strips are read in place by the direct kernels, and only
/// the ragged `n`-edge strip goes through a small packed panel.
#[allow(clippy::too_many_arguments)]
fn gemm_small_m<A: WeightElems>(
    which: Isa,
    a: A,
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    kc_target: usize,
    ep: Option<Epilogue<'_>>,
) {
    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let full_strips = n / NR;
        let n_edge = n - full_strips * NR;
        let m_tiles = m.div_ceil(MR);
        let mut pc = 0;
        while pc < k {
            let kc = kc_target.min(k - pc);
            let ep_panel = if pc + kc >= k { ep } else { None };
            pack_a(a, &mut scratch.apack, 0, m, pc, kc, k);
            // ragged right edge of B: pack once per panel, zero-padded
            if n_edge > 0 {
                scratch.bpack.clear();
                scratch.bpack.resize(kc * NR, 0.0);
                let j0 = full_strips * NR;
                for p in 0..kc {
                    let src = &b[(pc + p) * n + j0..(pc + p) * n + n];
                    scratch.bpack[p * NR..p * NR + n_edge].copy_from_slice(src);
                }
            }
            // strips outer, tiles inner: one strip's B window (kc x NR) stays
            // cache-resident while every A tile runs against it
            for js in 0..full_strips {
                let j0 = js * NR;
                for it in 0..m_tiles {
                    let i0 = it * MR;
                    let mr = MR.min(m - i0);
                    let ap = &scratch.apack[it * kc * MR..(it + 1) * kc * MR];
                    let bwin = &b[pc * n + j0..];
                    if mr == MR {
                        run_kernel_direct(
                            which,
                            ap,
                            bwin,
                            n,
                            &mut out[i0 * n + j0..],
                            kc,
                            n,
                            ep_panel.map(|e| e.offset_rows(i0)),
                        );
                    } else {
                        scratch.edge.clear();
                        scratch.edge.resize(MR * NR, 0.0);
                        run_kernel_direct(which, ap, bwin, n, &mut scratch.edge, kc, NR, None);
                        for i in 0..mr {
                            let src = &scratch.edge[i * NR..i * NR + NR];
                            let dst = &mut out[(i0 + i) * n + j0..(i0 + i) * n + j0 + NR];
                            store_edge_row(dst, src, i0 + i, ep_panel);
                        }
                    }
                }
            }
            if n_edge > 0 {
                let j0 = full_strips * NR;
                for it in 0..m_tiles {
                    let i0 = it * MR;
                    let mr = MR.min(m - i0);
                    let ap = &scratch.apack[it * kc * MR..(it + 1) * kc * MR];
                    scratch.edge.clear();
                    scratch.edge.resize(MR * NR, 0.0);
                    run_kernel(which, ap, &scratch.bpack, &mut scratch.edge, kc, NR, None);
                    for i in 0..mr {
                        let src = &scratch.edge[i * NR..i * NR + n_edge];
                        let dst = &mut out[(i0 + i) * n + j0..(i0 + i) * n + n];
                        store_edge_row(dst, src, i0 + i, ep_panel);
                    }
                }
            }
            pc += kc;
        }
    });
}

// ---------------------------------------------------------------------------
// Batched small-GEMM
// ---------------------------------------------------------------------------

/// Walks the per-item segments of columns `[j0, j0 + nr)` of the *virtual
/// column concatenation* of a batch's panels (item `s` contributes columns
/// `[s*n, (s+1)*n)`), calling `f(s, j, off, seg)` for each maximal run that
/// stays inside one item: item index, column within the item, offset within
/// the strip, segment length. Shared by the strip packing and the
/// bounce-buffer scatter, which must agree on this layout exactly.
fn for_each_segment(j0: usize, nr: usize, n: usize, mut f: impl FnMut(usize, usize, usize, usize)) {
    let mut off = 0;
    while off < nr {
        let s = (j0 + off) / n;
        let j = (j0 + off) - s * n;
        let seg = (n - j).min(nr - off);
        f(s, j, off, seg);
        off += seg;
    }
}

/// Packs the whole virtual column concatenation of all batch items' `B`
/// panels (`n_total = batch * n` columns) into `NR`-wide zero-padded strips
/// for `k` rows `[pc, pc + kc)`: `bpack[strip][p][j]`, the batched twin of
/// [`pack_b`].
///
/// This is the n-blocking at the heart of the batched path: several samples'
/// skinny column panels land side by side in one strip, so the register-tiled
/// micro-kernel runs at full `NR` width even when each sample's `n` is far
/// below it.
#[allow(clippy::too_many_arguments)]
fn pack_b_batch(
    bs: &[f32],
    bpack: &mut Vec<f32>,
    pc: usize,
    kc: usize,
    n: usize,
    stride_b: usize,
    n_total: usize,
) {
    let n_strips = n_total.div_ceil(NR);
    bpack.clear();
    bpack.resize(n_strips * kc * NR, 0.0);
    for (js, dst) in bpack.chunks_mut(kc * NR).enumerate() {
        let j0 = js * NR;
        let nr = NR.min(n_total - j0);
        for_each_segment(j0, nr, n, |s, j, off, seg| {
            let base = s * stride_b + pc * n + j;
            for p in 0..kc {
                let src = &bs[base + p * n..base + p * n + seg];
                dst[p * NR + off..p * NR + off + seg].copy_from_slice(src);
            }
        });
    }
}

/// The batched blocked core for one shared `A` panel: `outs[s] += A * B[s]`
/// for `batch` items, with `ep` applied at store time on the final `k` panel.
///
/// `A` is packed **once per k-panel** and every item's columns stream through
/// it; strips of the virtual column concatenation that land fully inside one
/// item's panel store straight into it, strips spanning an item boundary (the
/// normal case when `n < NR`) run full-width into the bounce buffer and
/// scatter per item segment.
#[allow(clippy::too_many_arguments)]
fn gemm_batch_core<A: WeightElems>(
    which: Isa,
    scratch: &mut GemmScratch,
    a: A,
    bs: &[f32],
    outs: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    stride_b: usize,
    stride_out: usize,
    kc_target: usize,
    ep: Option<Epilogue<'_>>,
) {
    let n_total = batch * n;
    let n_strips = n_total.div_ceil(NR);
    let mut pc = 0;
    while pc < k {
        let kc = kc_target.min(k - pc);
        let ep_panel = if pc + kc >= k { ep } else { None };
        // every strip of the whole batch is gather-packed once per k-panel
        // (outside the A row-block loop, like gemm_impl's pack_b)
        pack_b_batch(bs, &mut scratch.bpack, pc, kc, n, stride_b, n_total);
        let mut row0 = 0;
        while row0 < m {
            let rows = (MC_TILES * MR).min(m - row0);
            pack_a(a, &mut scratch.apack, row0, rows, pc, kc, k);
            let m_tiles = rows.div_ceil(MR);
            for js in 0..n_strips {
                let j0 = js * NR;
                let nr = NR.min(n_total - j0);
                let bp = &scratch.bpack[js * kc * NR..(js + 1) * kc * NR];
                // a full strip whose columns all belong to one item can store
                // straight into that item's output panel at row stride n
                let s0 = j0 / n;
                let direct = nr == NR && (j0 + NR - 1) / n == s0;
                for it in 0..m_tiles {
                    let i0 = row0 + it * MR;
                    let mr = MR.min(row0 + rows - i0);
                    let ap = &scratch.apack[it * kc * MR..(it + 1) * kc * MR];
                    if direct && mr == MR {
                        let j = j0 - s0 * n;
                        run_kernel(
                            which,
                            ap,
                            bp,
                            &mut outs[s0 * stride_out + i0 * n + j..],
                            kc,
                            n,
                            ep_panel.map(|e| e.offset_rows(i0)),
                        );
                    } else {
                        // boundary-spanning or ragged tile: full-width kernel
                        // into the bounce buffer, then scatter each row's
                        // per-item segments (epilogue applied scalar-wise)
                        scratch.edge.clear();
                        scratch.edge.resize(MR * NR, 0.0);
                        run_kernel(which, ap, bp, &mut scratch.edge, kc, NR, None);
                        for i in 0..mr {
                            let src = &scratch.edge[i * NR..i * NR + nr];
                            for_each_segment(j0, nr, n, |s, j, off, seg| {
                                let base = s * stride_out + (i0 + i) * n + j;
                                store_edge_row(
                                    &mut outs[base..base + seg],
                                    &src[off..off + seg],
                                    i0 + i,
                                    ep_panel,
                                );
                            });
                        }
                    }
                }
            }
            row0 += rows;
        }
        pc += kc;
    }
}

/// Shared implementation behind [`gemm_batch_strided`] /
/// [`gemm_batch_acc_strided`] with an explicit parallel/serial switch so
/// tests can exercise both paths regardless of the host's core count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_batch_impl(
    a: &[f32],
    bs: &[f32],
    outs: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    stride_a: usize,
    stride_b: usize,
    stride_out: usize,
    acc: bool,
    ep: Option<Epilogue<'_>>,
    parallel: bool,
) {
    debug_assert!(ep.is_none() || !acc, "epilogue implies overwrite semantics");
    if batch == 0 || m == 0 || n == 0 {
        return;
    }
    if !acc {
        // overwrite semantics: clear every output panel (the strips then
        // accumulate into zeros, exactly like `gemm`)
        for s in 0..batch {
            outs[s * stride_out..s * stride_out + m * n].fill(0.0);
        }
    }
    if k == 0 {
        if let Some(e) = ep {
            // A*B is all zeros; the epilogue still applies
            for s in 0..batch {
                let panel = &mut outs[s * stride_out..s * stride_out + m * n];
                for (i, row) in panel.chunks_mut(n).enumerate() {
                    row.fill(e.apply_scalar(i, 0.0));
                }
            }
        }
        return;
    }
    let which = isa();
    let kc_target = k.div_ceil(k.div_ceil(KC)).max(1);
    if !parallel {
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            if stride_a == 0 {
                gemm_batch_core(
                    which, scratch, a, bs, outs, m, k, n, batch, stride_b, stride_out, kc_target,
                    ep,
                );
            } else {
                // per-item A panels: items run independently, but share one
                // dispatch, one scratch, and the same packed-strip machinery
                for s in 0..batch {
                    gemm_batch_core(
                        which,
                        scratch,
                        &a[s * stride_a..],
                        &bs[s * stride_b..],
                        &mut outs[s * stride_out..],
                        m,
                        k,
                        n,
                        1,
                        stride_b,
                        stride_out,
                        kc_target,
                        ep,
                    );
                }
            }
        });
        return;
    }

    // Parallel path: shard the batch into contiguous item bands; each pool
    // task packs into its own short-lived scratch (A is small in the batched
    // regime, so re-packing it per band is cheaper than sharing).
    let bands = hs_parallel::num_threads().min(batch);
    let band_len = batch.div_ceil(bands).max(1);
    let outs = &mut outs[..(batch - 1) * stride_out + m * n];
    hs_parallel::scope(|sc| {
        for (band, out_band) in outs.chunks_mut(band_len * stride_out).enumerate() {
            sc.spawn(move || {
                let s0 = band * band_len;
                let items = band_len.min(batch - s0);
                let mut scratch = GemmScratch::new();
                if stride_a == 0 {
                    gemm_batch_core(
                        which,
                        &mut scratch,
                        a,
                        &bs[s0 * stride_b..],
                        out_band,
                        m,
                        k,
                        n,
                        items,
                        stride_b,
                        stride_out,
                        kc_target,
                        ep,
                    );
                } else {
                    for i in 0..items {
                        gemm_batch_core(
                            which,
                            &mut scratch,
                            &a[(s0 + i) * stride_a..],
                            &bs[(s0 + i) * stride_b..],
                            &mut out_band[i * stride_out..],
                            m,
                            k,
                            n,
                            1,
                            stride_b,
                            stride_out,
                            kc_target,
                            ep,
                        );
                    }
                }
            });
        }
    });
}

/// Validates the strided-batch slice contracts shared by
/// [`gemm_batch_strided`] and [`gemm_batch_acc_strided`].
#[allow(clippy::too_many_arguments)]
fn assert_batch_contract(
    a: &[f32],
    bs: &[f32],
    outs: &[f32],
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    stride_a: usize,
    stride_b: usize,
    stride_out: usize,
) {
    if batch == 0 {
        return;
    }
    if batch > 1 {
        assert!(
            stride_a == 0 || stride_a >= m * k,
            "stride_a {stride_a} smaller than an A panel (m*k = {})",
            m * k
        );
        assert!(
            stride_b >= k * n,
            "stride_b {stride_b} smaller than a B panel (k*n = {})",
            k * n
        );
        assert!(
            stride_out >= m * n,
            "stride_out {stride_out} smaller than an output panel (m*n = {})",
            m * n
        );
    }
    assert!(
        a.len() >= (batch - 1) * stride_a + m * k,
        "A is {} elements, need (batch-1)*stride_a + m*k = {}",
        a.len(),
        (batch - 1) * stride_a + m * k
    );
    assert!(
        bs.len() >= (batch - 1) * stride_b + k * n,
        "B is {} elements, need (batch-1)*stride_b + k*n = {}",
        bs.len(),
        (batch - 1) * stride_b + k * n
    );
    assert!(
        outs.len() >= (batch - 1) * stride_out + m * n,
        "out is {} elements, need (batch-1)*stride_out + m*n = {}",
        outs.len(),
        (batch - 1) * stride_out + m * n
    );
}

/// Whether a batched problem is worth fanning out over the pool.
fn batch_parallel(m: usize, k: usize, n: usize, batch: usize) -> bool {
    batch >= 2
        && 2 * m * k * n * batch >= PARALLEL_FLOP_THRESHOLD
        && hs_parallel::num_threads() > 1
        && !hs_parallel::inside_pool()
}

/// Batched small-GEMM: `outs[s] = act(scale ⊙ (A_s * B_s) + shift)` for
/// `s < batch`, where `A_s = a[s * stride_a ..]` (`stride_a == 0` means one
/// shared `A`, the common conv-weight case), `B_s = bs[s * stride_b ..]` and
/// the output panels sit `stride_out` apart.
///
/// This is the many-skinny-GEMMs entry point: a per-sample 1×1-conv GEMM at
/// 4×4–8×8 spatial has `n = 16..64 < NR`, so calling [`gemm`] per sample
/// re-packs the shared weight panel every time and runs every strip as a
/// ragged edge. Here the shared `A` is packed **once per k-panel**, all
/// samples' column panels stream through the hot micro-kernel back to back,
/// and the n-blocked packing ([`pack_b_batch`]) lays several samples' skinny
/// panels side by side in one `NR`-wide strip so the register tile runs at
/// full width. The optional [`Epilogue`] (per-output-row scale/shift +
/// activation) is applied in the store pass on all ISA tiers, exactly like
/// [`gemm_epilogue`].
///
/// Overwrites each `m*n` output panel (elements between panels are left
/// untouched). Large batches fan out item bands over the shared
/// [`hs_parallel`] pool; calls from inside a pool task stay serial.
///
/// # Panics
///
/// Panics if any slice is shorter than its strided contract, a stride is
/// smaller than its panel (`batch > 1`), or the epilogue's scale/shift hold
/// fewer than `m` entries.
#[allow(clippy::too_many_arguments)]
pub fn gemm_batch_strided(
    a: &[f32],
    bs: &[f32],
    outs: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    stride_a: usize,
    stride_b: usize,
    stride_out: usize,
    ep: Option<Epilogue<'_>>,
) {
    assert_batch_contract(a, bs, outs, m, k, n, batch, stride_a, stride_b, stride_out);
    if let Some(e) = &ep {
        assert!(e.scale.len() >= m, "epilogue scale needs {m} entries");
        assert!(e.shift.len() >= m, "epilogue shift needs {m} entries");
    }
    let parallel = batch_parallel(m, k, n, batch);
    gemm_batch_impl(
        a, bs, outs, m, k, n, batch, stride_a, stride_b, stride_out, false, ep, parallel,
    );
}

/// `outs[s] += A_s * B_s` for `s < batch`; otherwise identical to
/// [`gemm_batch_strided`] (no epilogue — accumulation implies the caller
/// provides the initial value, e.g. a bias fill).
///
/// # Panics
///
/// Panics if any slice is shorter than its strided contract or a stride is
/// smaller than its panel (`batch > 1`).
#[allow(clippy::too_many_arguments)]
pub fn gemm_batch_acc_strided(
    a: &[f32],
    bs: &[f32],
    outs: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    stride_a: usize,
    stride_b: usize,
    stride_out: usize,
) {
    assert_batch_contract(a, bs, outs, m, k, n, batch, stride_a, stride_b, stride_out);
    let parallel = batch_parallel(m, k, n, batch);
    gemm_batch_impl(
        a, bs, outs, m, k, n, batch, stride_a, stride_b, stride_out, true, None, parallel,
    );
}

/// Validates the cyclic-batch contracts shared by
/// [`gemm_batch_cyclic_strided`] and [`gemm_batch_cyclic_acc_strided`].
#[allow(clippy::too_many_arguments)]
fn assert_cyclic_contract(
    a_len: usize,
    bs: &[f32],
    outs: &[f32],
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    groups: usize,
    stride_a: usize,
    stride_b: usize,
    stride_out: usize,
) {
    assert!(groups >= 1, "cyclic batch needs at least one group");
    assert_eq!(
        batch % groups,
        0,
        "cyclic batch size {batch} must be a multiple of groups {groups}"
    );
    if batch == 0 {
        return;
    }
    if groups > 1 {
        assert!(
            stride_a == 0 || stride_a >= m * k,
            "stride_a {stride_a} smaller than an A panel (m*k = {})",
            m * k
        );
    }
    if batch > 1 {
        assert!(
            stride_b >= k * n,
            "stride_b {stride_b} smaller than a B panel (k*n = {})",
            k * n
        );
        assert!(
            stride_out >= m * n,
            "stride_out {stride_out} smaller than an output panel (m*n = {})",
            m * n
        );
    }
    assert!(
        a_len >= (groups - 1) * stride_a + m * k,
        "A is {} elements, need (groups-1)*stride_a + m*k = {}",
        a_len,
        (groups - 1) * stride_a + m * k
    );
    assert!(
        bs.len() >= (batch - 1) * stride_b + k * n,
        "B is {} elements, need (batch-1)*stride_b + k*n = {}",
        bs.len(),
        (batch - 1) * stride_b + k * n
    );
    assert!(
        outs.len() >= (batch - 1) * stride_out + m * n,
        "out is {} elements, need (batch-1)*stride_out + m*n = {}",
        outs.len(),
        (batch - 1) * stride_out + m * n
    );
}

/// Shared implementation behind [`gemm_batch_cyclic_strided`] /
/// [`gemm_batch_cyclic_acc_strided`]: `batch` items whose `A` panels cycle
/// with period `groups` (`A_t = a[(t % groups) * stride_a ..]`).
///
/// Per group `g`, the item subsequence `t ≡ g (mod groups)` has uniform
/// strides `groups * stride_b` / `groups * stride_out`, so each group runs
/// the shared-A batched core ([`gemm_batch_core`]): the group's `A` panel is
/// packed once per k-panel and its samples' skinny columns share `NR`-wide
/// strips exactly like [`gemm_batch_strided`] with `stride_a == 0`. The
/// parallel path bands over **samples** (each band covers all groups for a
/// contiguous sample range, so output bands stay contiguous and
/// `chunks_mut`-splittable).
#[allow(clippy::too_many_arguments)]
fn gemm_batch_cyclic_impl<A: WeightElems>(
    a: A,
    bs: &[f32],
    outs: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    groups: usize,
    stride_a: usize,
    stride_b: usize,
    stride_out: usize,
    acc: bool,
    ep: Option<Epilogue<'_>>,
    parallel: bool,
) {
    debug_assert!(ep.is_none() || !acc, "epilogue implies overwrite semantics");
    if batch == 0 || m == 0 || n == 0 {
        return;
    }
    let per_group = batch / groups;
    if !acc {
        for t in 0..batch {
            outs[t * stride_out..t * stride_out + m * n].fill(0.0);
        }
    }
    if k == 0 {
        if let Some(e) = ep {
            for t in 0..batch {
                let e = e.offset_rows((t % groups) * m);
                let panel = &mut outs[t * stride_out..t * stride_out + m * n];
                for (i, row) in panel.chunks_mut(n).enumerate() {
                    row.fill(e.apply_scalar(i, 0.0));
                }
            }
        }
        return;
    }
    let which = isa();
    let kc_target = k.div_ceil(k.div_ceil(KC)).max(1);
    if !parallel {
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            for g in 0..groups {
                gemm_batch_core(
                    which,
                    scratch,
                    a.offset(g * stride_a),
                    &bs[g * stride_b..],
                    &mut outs[g * stride_out..],
                    m,
                    k,
                    n,
                    per_group,
                    groups * stride_b,
                    groups * stride_out,
                    kc_target,
                    ep.map(|e| e.offset_rows(g * m)),
                );
            }
        });
        return;
    }

    // Parallel path: contiguous sample bands (each sample = `groups`
    // consecutive items), every band running all of its groups' shared-A
    // cores with its own short-lived scratch.
    let bands = hs_parallel::num_threads().min(per_group);
    let band_len = per_group.div_ceil(bands).max(1);
    let outs = &mut outs[..(batch - 1) * stride_out + m * n];
    hs_parallel::scope(|sc| {
        for (band, out_band) in outs.chunks_mut(band_len * groups * stride_out).enumerate() {
            sc.spawn(move || {
                let s0 = band * band_len;
                let samples = band_len.min(per_group - s0);
                let mut scratch = GemmScratch::new();
                for g in 0..groups {
                    gemm_batch_core(
                        which,
                        &mut scratch,
                        a.offset(g * stride_a),
                        &bs[(s0 * groups + g) * stride_b..],
                        &mut out_band[g * stride_out..],
                        m,
                        k,
                        n,
                        samples,
                        groups * stride_b,
                        groups * stride_out,
                        kc_target,
                        ep.map(|e| e.offset_rows(g * m)),
                    );
                }
            });
        }
    });
}

/// Grouped batched small-GEMM:
/// `outs[t] = act(scale ⊙ (A_{t % groups} * B_t) + shift)` for `t < batch`,
/// where the `groups` A panels sit `stride_a` apart and items are
/// **sample-major, group-minor** (`t = sample * groups + group`) — the
/// layout of a grouped convolution's per-(sample, group) GEMMs over
/// `groups × samples`.
///
/// This folds the per-group loop a caller would otherwise run around
/// [`gemm_batch_strided`] into one call: every group's weight panel is still
/// packed once per k-panel and its samples' skinny columns still share
/// full-width register strips, but the pool fan-out now bands over the whole
/// `groups × samples` item space at once instead of `groups` separate
/// dispatches. The epilogue's `scale`/`shift` hold `groups * m` rows; item
/// `t` uses rows `[(t % groups) * m, (t % groups + 1) * m)`.
///
/// `groups == 1` is exactly [`gemm_batch_strided`] with a shared `A`.
///
/// # Panics
///
/// Panics if `batch` is not a multiple of `groups`, any slice is shorter
/// than its strided contract, a stride is smaller than its panel, or the
/// epilogue's scale/shift hold fewer than `groups * m` entries.
#[allow(clippy::too_many_arguments)]
pub fn gemm_batch_cyclic_strided(
    a: &[f32],
    bs: &[f32],
    outs: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    groups: usize,
    stride_a: usize,
    stride_b: usize,
    stride_out: usize,
    ep: Option<Epilogue<'_>>,
) {
    gemm_batch_cyclic_strided_q(
        WeightMat::F32(a),
        bs,
        outs,
        m,
        k,
        n,
        batch,
        groups,
        stride_a,
        stride_b,
        stride_out,
        ep,
    );
}

/// [`gemm_batch_cyclic_strided`] over a runtime-dtype weight operand:
/// quantized `A` panels widen to `f32` while being packed (once per
/// k-panel), so the per-sample streaming cost of the weights is halved
/// (f16) or quartered (i8) while the arithmetic stays `f32`.
///
/// # Panics
///
/// As [`gemm_batch_cyclic_strided`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_batch_cyclic_strided_q(
    a: WeightMat<'_>,
    bs: &[f32],
    outs: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    groups: usize,
    stride_a: usize,
    stride_b: usize,
    stride_out: usize,
    ep: Option<Epilogue<'_>>,
) {
    assert_cyclic_contract(
        a.len(),
        bs,
        outs,
        m,
        k,
        n,
        batch,
        groups,
        stride_a,
        stride_b,
        stride_out,
    );
    if let Some(e) = &ep {
        assert!(
            e.scale.len() >= groups * m,
            "epilogue scale needs {} entries",
            groups * m
        );
        assert!(
            e.shift.len() >= groups * m,
            "epilogue shift needs {} entries",
            groups * m
        );
    }
    let parallel = batch_parallel(m, k, n, batch) && batch / groups.max(1) >= 2;
    with_elems!(a, aa => gemm_batch_cyclic_impl(
        aa, bs, outs, m, k, n, batch, groups, stride_a, stride_b, stride_out, false, ep, parallel,
    ));
}

/// `outs[t] += A_{t % groups} * B_t` for `t < batch`; otherwise identical to
/// [`gemm_batch_cyclic_strided`] (no epilogue — accumulation implies the
/// caller provides the initial value, e.g. a bias fill).
///
/// # Panics
///
/// As [`gemm_batch_cyclic_strided`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_batch_cyclic_acc_strided(
    a: &[f32],
    bs: &[f32],
    outs: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    groups: usize,
    stride_a: usize,
    stride_b: usize,
    stride_out: usize,
) {
    gemm_batch_cyclic_acc_strided_q(
        WeightMat::F32(a),
        bs,
        outs,
        m,
        k,
        n,
        batch,
        groups,
        stride_a,
        stride_b,
        stride_out,
    );
}

/// [`gemm_batch_cyclic_acc_strided`] over a runtime-dtype weight operand
/// (see [`gemm_batch_cyclic_strided_q`] for the convert-on-pack semantics).
///
/// # Panics
///
/// As [`gemm_batch_cyclic_strided`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_batch_cyclic_acc_strided_q(
    a: WeightMat<'_>,
    bs: &[f32],
    outs: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    groups: usize,
    stride_a: usize,
    stride_b: usize,
    stride_out: usize,
) {
    assert_cyclic_contract(
        a.len(),
        bs,
        outs,
        m,
        k,
        n,
        batch,
        groups,
        stride_a,
        stride_b,
        stride_out,
    );
    let parallel = batch_parallel(m, k, n, batch) && batch / groups.max(1) >= 2;
    with_elems!(a, aa => gemm_batch_cyclic_impl(
        aa, bs, outs, m, k, n, batch, groups, stride_a, stride_b, stride_out, true, None, parallel,
    ));
}

/// `out = A * B^T` for row-major `A: [m, k]`, `B: [n, k]`, `out: [m, n]`.
///
/// The transpose of `B` is staged in a thread-local scratch buffer, so
/// steady-state calls do not allocate.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` contract.
pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_nt_q(a, WeightMat::F32(b), out, m, k, n);
}

/// [`gemm_nt`] over a runtime-dtype `B` operand — the `Linear` inference
/// path with quantized weights. The weights widen to `f32` *during the
/// transpose staging pass* (the i8 scale is folded in there), so the inner
/// GEMM runs all-`f32` and the bandwidth saving comes from streaming the
/// narrow weight buffer exactly once.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` contract.
pub fn gemm_nt_q(a: &[f32], b: WeightMat<'_>, out: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(
        b.len() >= n * k,
        "B is {} elements, need n*k = {}",
        b.len(),
        n * k
    );
    // Take the scratch out of its cell rather than holding a RefCell borrow
    // across the inner gemm: a parallel gemm's scope may execute unrelated
    // queued tasks on this thread while it waits, and one of those could
    // re-enter gemm_nt/gemm_tn.
    let mut buf = TRANSPOSE_SCRATCH.with(|cell| std::mem::take(&mut *cell.borrow_mut()));
    if buf.len() < k * n {
        buf.resize(k * n, 0.0);
    }
    with_elems!(b, bb => transpose_elems_into(bb, &mut buf, n, k));
    gemm(a, &buf, out, m, k, n);
    TRANSPOSE_SCRATCH.with(|cell| *cell.borrow_mut() = buf);
}

/// `out = A^T * B` for row-major `A: [k, m]`, `B: [k, n]`, `out: [m, n]`.
///
/// The transpose of `A` is staged in a thread-local scratch buffer, so
/// steady-state calls do not allocate.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` contract.
pub fn gemm_tn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(
        a.len() >= k * m,
        "A is {} elements, need k*m = {}",
        a.len(),
        k * m
    );
    // see gemm_nt for why the scratch is taken, not borrowed
    let mut buf = TRANSPOSE_SCRATCH.with(|cell| std::mem::take(&mut *cell.borrow_mut()));
    if buf.len() < k * m {
        buf.resize(k * m, 0.0);
    }
    transpose_into(a, &mut buf, k, m);
    gemm(&buf, b, out, m, k, n);
    TRANSPOSE_SCRATCH.with(|cell| *cell.borrow_mut() = buf);
}

/// Transposes row-major `src: [rows, cols]` into `dst: [cols, rows]`.
///
/// `dst` is overwritten and must hold at least `rows * cols` elements; this
/// is the cheap companion that lets callers express `A^T * B` / `A * B^T`
/// products as [`gemm`] over a reused scratch buffer.
///
/// # Panics
///
/// Panics if either slice is shorter than `rows * cols`.
pub fn transpose_into(src: &[f32], dst: &mut [f32], rows: usize, cols: usize) {
    transpose_elems_into(src, dst, rows, cols);
}

/// The generic transpose body behind [`transpose_into`] and the quantized
/// [`gemm_nt_q`] staging pass: elements widen to `f32` as they are scattered
/// into `dst`.
fn transpose_elems_into<A: WeightElems>(src: A, dst: &mut [f32], rows: usize, cols: usize) {
    assert!(src.len() >= rows * cols, "transpose src too short");
    assert!(dst.len() >= rows * cols, "transpose dst too short");
    // Tiled to keep both sides cache-resident for large matrices.
    const T: usize = 32;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + T).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + T).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src.at(r * cols + c);
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::matmul_naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, ctx: &str) {
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0),
                "{ctx}: element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_naive_on_square_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        for size in [1usize, 2, 7, 8, 16, 33, 48, 100] {
            let a = random_matrix(&mut rng, size * size);
            let b = random_matrix(&mut rng, size * size);
            let mut expect = vec![0.0; size * size];
            matmul_naive(&a, &b, &mut expect, size, size, size);
            let mut got = vec![0.0; size * size];
            gemm(&a, &b, &mut got, size, size, size);
            assert_close(&expect, &got, 1e-5, &format!("square {size}"));
        }
    }

    #[test]
    fn matches_naive_on_ragged_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (MR, KC, NR),
            (MR + 1, KC + 1, NR + 1),
            (MR - 1, 17, NR - 1),
            (2 * MR + 3, 2 * KC + 5, 2 * NR + 7),
            (64, 1, 64),
            (1, 300, 1),
        ] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut expect = vec![0.0; m * n];
            matmul_naive(&a, &b, &mut expect, m, k, n);
            let mut got = vec![0.0; m * n];
            gemm(&a, &b, &mut got, m, k, n);
            assert_close(&expect, &got, 1e-5, &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn parallel_path_matches_serial_path() {
        let mut rng = StdRng::seed_from_u64(3);
        for (m, k, n) in [(37usize, 65usize, 83usize), (128, 128, 128), (257, 96, 61)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut serial = vec![0.0; m * n];
            gemm_acc_impl(&a, &b, &mut serial, m, k, n, false);
            let mut parallel = vec![0.0; m * n];
            gemm_acc_impl(&a, &b, &mut parallel, m, k, n, true);
            assert_eq!(serial, parallel, "{m}x{k}x{n} parallel/serial divergence");
        }
    }

    #[test]
    fn gemm_acc_accumulates() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, k, n) = (13, 21, 17);
        let a = random_matrix(&mut rng, m * k);
        let b = random_matrix(&mut rng, k * n);
        let mut once = vec![0.0; m * n];
        gemm(&a, &b, &mut once, m, k, n);
        let mut twice = vec![0.0; m * n];
        gemm_acc(&a, &b, &mut twice, m, k, n);
        gemm_acc(&a, &b, &mut twice, m, k, n);
        for (o, t) in once.iter().zip(twice.iter()) {
            assert!((2.0 * o - t).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_overwrites_stale_output() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut out = vec![999.0f32; 4];
        gemm(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, vec![2.0; 4]);
    }

    #[test]
    fn nan_and_inf_propagate() {
        // the seed kernel's `== 0.0` skip silently dropped NaN/Inf from the
        // zero-weight lanes; the GEMM path must keep IEEE semantics
        let a = vec![0.0f32, f32::NAN, 1.0, 2.0];
        let b = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut out = vec![0.0f32; 4];
        gemm(&a, &b, &mut out, 2, 2, 2);
        assert!(
            out[0].is_nan() && out[1].is_nan(),
            "0*NaN must stay NaN: {out:?}"
        );
        assert_eq!(&out[2..], &[7.0, 10.0]);

        let a = vec![1.0f32, f32::INFINITY];
        let b = vec![1.0f32, 0.0];
        let mut out = vec![0.0f32; 1];
        gemm(&a, &b, &mut out, 1, 2, 1);
        assert!(out[0].is_nan(), "1*1 + inf*0 must be NaN: {out:?}");
    }

    #[test]
    fn zero_dimensions_are_safe() {
        let mut out = vec![5.0f32; 6];
        gemm(&[], &[], &mut out, 0, 0, 0);
        gemm(&[], &[], &mut out[..0], 0, 4, 0);
        // k == 0 must yield a zero product
        let mut out = vec![5.0f32; 6];
        gemm(&[], &[], &mut out, 2, 0, 3);
        assert_eq!(out, vec![0.0; 6]);
    }

    /// Scalar reference for [`gemm_epilogue`]: naive matmul, then the
    /// per-row affine + activation applied element-wise.
    fn epilogue_reference(
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        ep: &Epilogue<'_>,
    ) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        matmul_naive(a, b, &mut out, m, k, n);
        for i in 0..m {
            for v in out[i * n..(i + 1) * n].iter_mut() {
                *v = ep.act.apply(*v * ep.scale[i] + ep.shift[i]);
            }
        }
        out
    }

    #[test]
    fn epilogue_matches_reference_across_shapes_and_activations() {
        let mut rng = StdRng::seed_from_u64(40);
        let acts = [
            EpilogueAct::None,
            EpilogueAct::Relu,
            EpilogueAct::LeakyRelu(0.1),
            EpilogueAct::Relu6,
        ];
        // shapes covering: full/partial tiles, full/edge strips, the
        // small-m direct path (m <= 64), the packed big-m path, and
        // multi-panel k (> KC)
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (MR, 17, NR),
            (MR + 3, KC + 9, NR + 5),
            (64, 32, 96),
            (65, 40, 50),
            (100, 2 * KC + 5, 2 * NR + 7),
        ] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let scale = random_matrix(&mut rng, m);
            let shift = random_matrix(&mut rng, m);
            for act in acts {
                let ep = Epilogue {
                    scale: &scale,
                    shift: &shift,
                    act,
                };
                let expect = epilogue_reference(&a, &b, m, k, n, &ep);
                // stale output contents must be ignored (overwrite semantics)
                let mut got = vec![777.0; m * n];
                gemm_epilogue(&a, &b, &mut got, m, k, n, &ep);
                assert_close(&expect, &got, 1e-4, &format!("{m}x{k}x{n} {act:?}"));
            }
        }
    }

    #[test]
    fn epilogue_parallel_path_matches_serial_path() {
        let mut rng = StdRng::seed_from_u64(41);
        for (m, k, n) in [(37usize, 65usize, 83usize), (128, 300, 61)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let scale = random_matrix(&mut rng, m);
            let shift = random_matrix(&mut rng, m);
            let ep = Epilogue {
                scale: &scale,
                shift: &shift,
                act: EpilogueAct::LeakyRelu(0.2),
            };
            let mut serial = vec![0.0; m * n];
            gemm_impl(a.as_slice(), &b, &mut serial, m, k, n, false, Some(ep));
            let mut parallel = vec![0.0; m * n];
            gemm_impl(a.as_slice(), &b, &mut parallel, m, k, n, true, Some(ep));
            assert_eq!(
                serial, parallel,
                "{m}x{k}x{n} epilogue parallel/serial divergence"
            );
        }
    }

    #[test]
    fn epilogue_nan_semantics_match_scalar_reference_on_full_and_ragged_tiles() {
        // a NaN in A poisons whole output rows; the SIMD store loops (full
        // tiles) and the scalar bounce path (ragged edge rows/cols) must
        // treat it exactly like EpilogueAct::apply — ReLU maps NaN to 0,
        // LeakyReLU and ReLU6 propagate it
        let mut rng = StdRng::seed_from_u64(42);
        // m = MR+1: rows 0..8 hit the SIMD kernel, row 8 the bounce path;
        // n = NR+1 adds a ragged column strip
        let (m, k, n) = (MR + 1, 19, NR + 1);
        let mut a = random_matrix(&mut rng, m * k);
        a[3 * k + 5] = f32::NAN; // poison row 3 (full tile)
        a[MR * k] = f32::NAN; // poison row 8 (edge tile)
        let b = random_matrix(&mut rng, k * n);
        let scale = random_matrix(&mut rng, m);
        let shift = random_matrix(&mut rng, m);
        for act in [
            EpilogueAct::None,
            EpilogueAct::Relu,
            EpilogueAct::LeakyRelu(0.1),
            EpilogueAct::Relu6,
        ] {
            let ep = Epilogue {
                scale: &scale,
                shift: &shift,
                act,
            };
            let expect = epilogue_reference(&a, &b, m, k, n, &ep);
            let mut got = vec![0.0; m * n];
            gemm_epilogue(&a, &b, &mut got, m, k, n, &ep);
            for (i, (e, g)) in expect.iter().zip(got.iter()).enumerate() {
                assert_eq!(
                    e.is_nan(),
                    g.is_nan(),
                    "{act:?}: element {i} ({},{}): NaN divergence {e} vs {g}",
                    i / n,
                    i % n
                );
                if !e.is_nan() {
                    assert!(
                        (e - g).abs() <= 1e-4 * e.abs().max(g.abs()).max(1.0),
                        "{act:?}: element {i}: {e} vs {g}"
                    );
                }
            }
        }
    }

    #[test]
    fn epilogue_with_zero_k_applies_shift_and_activation() {
        let scale = vec![2.0f32, 2.0];
        let shift = vec![-1.0f32, 3.0];
        let mut out = vec![9.0f32; 6];
        gemm_epilogue(
            &[],
            &[],
            &mut out,
            2,
            0,
            3,
            &Epilogue {
                scale: &scale,
                shift: &shift,
                act: EpilogueAct::Relu,
            },
        );
        assert_eq!(out, vec![0.0, 0.0, 0.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn epilogue_activations_match_scalar_definition() {
        // one value per interesting regime, through the full GEMM path
        let a = vec![1.0f32; 4]; // 4x1
        let b = vec![1.0f32]; // 1x1
        for (act, input, expect) in [
            (EpilogueAct::Relu, -2.0f32, 0.0f32),
            (EpilogueAct::Relu, 2.0, 2.0),
            (EpilogueAct::LeakyRelu(0.5), -2.0, -1.0),
            (EpilogueAct::Relu6, 9.0, 6.0),
        ] {
            let scale = vec![input; 4];
            let shift = vec![0.0f32; 4];
            let mut out = vec![0.0f32; 4];
            gemm_epilogue(
                &a,
                &b,
                &mut out,
                4,
                1,
                1,
                &Epilogue {
                    scale: &scale,
                    shift: &shift,
                    act,
                },
            );
            for v in out {
                assert_eq!(v, expect, "{act:?}({input})");
            }
        }
    }

    /// Per-sample serial reference for the batched entry points.
    #[allow(clippy::too_many_arguments)]
    fn batch_reference(
        a: &[f32],
        bs: &[f32],
        outs: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        batch: usize,
        stride_a: usize,
        stride_b: usize,
        stride_out: usize,
        ep: Option<&Epilogue<'_>>,
    ) {
        for s in 0..batch {
            let a_s = &a[s * stride_a..s * stride_a + m * k];
            let b_s = &bs[s * stride_b..s * stride_b + k * n];
            let out_s = &mut outs[s * stride_out..s * stride_out + m * n];
            match ep {
                Some(e) => gemm_epilogue(a_s, b_s, out_s, m, k, n, e),
                None => gemm(a_s, b_s, out_s, m, k, n),
            }
        }
    }

    #[test]
    fn batched_matches_serial_gemm_across_ragged_shapes() {
        let mut rng = StdRng::seed_from_u64(50);
        // (m, k, n, batch): n < NR edge tiles, batch == 1, full strips,
        // strip-spanning boundaries, multi-panel k, ragged m tiles
        for (m, k, n, batch) in [
            (1usize, 1usize, 1usize, 1usize),
            (8, 16, 16, 5),
            (24, 64, 16, 8),
            (17, 33, 7, 9),
            (64, 64, 64, 4),
            (8, KC + 7, 5, 11),
            (MR + 3, 19, NR + 5, 3),
            (3, 5, 2, 1),
        ] {
            for shared_a in [true, false] {
                let stride_a = if shared_a { 0 } else { m * k };
                let a_panels = if shared_a { 1 } else { batch };
                let a = random_matrix(&mut rng, a_panels * m * k);
                let bs = random_matrix(&mut rng, batch * k * n);
                let mut expect = vec![0.0; batch * m * n];
                batch_reference(
                    &a,
                    &bs,
                    &mut expect,
                    m,
                    k,
                    n,
                    batch,
                    stride_a,
                    k * n,
                    m * n,
                    None,
                );
                // stale output contents must be ignored (overwrite semantics)
                let mut got = vec![777.0; batch * m * n];
                gemm_batch_strided(
                    &a,
                    &bs,
                    &mut got,
                    m,
                    k,
                    n,
                    batch,
                    stride_a,
                    k * n,
                    m * n,
                    None,
                );
                assert_close(
                    &expect,
                    &got,
                    1e-5,
                    &format!("{m}x{k}x{n} b{batch} shared_a={shared_a}"),
                );
            }
        }
    }

    #[test]
    fn batched_epilogue_matches_per_sample_gemm_epilogue() {
        let mut rng = StdRng::seed_from_u64(51);
        for (m, k, n, batch) in [
            (8usize, 16usize, 16usize, 6usize),
            (13, 40, 9, 7),
            (64, 32, 50, 3),
        ] {
            let a = random_matrix(&mut rng, m * k);
            let bs = random_matrix(&mut rng, batch * k * n);
            let scale = random_matrix(&mut rng, m);
            let shift = random_matrix(&mut rng, m);
            for act in [
                EpilogueAct::None,
                EpilogueAct::Relu,
                EpilogueAct::LeakyRelu(0.1),
                EpilogueAct::Relu6,
            ] {
                let ep = Epilogue {
                    scale: &scale,
                    shift: &shift,
                    act,
                };
                let mut expect = vec![0.0; batch * m * n];
                batch_reference(
                    &a,
                    &bs,
                    &mut expect,
                    m,
                    k,
                    n,
                    batch,
                    0,
                    k * n,
                    m * n,
                    Some(&ep),
                );
                let mut got = vec![0.0; batch * m * n];
                gemm_batch_strided(&a, &bs, &mut got, m, k, n, batch, 0, k * n, m * n, Some(ep));
                assert_close(
                    &expect,
                    &got,
                    1e-4,
                    &format!("{m}x{k}x{n} b{batch} {act:?}"),
                );
            }
        }
    }

    #[test]
    fn batched_strided_panels_leave_gaps_untouched() {
        // stride_out > m*n: the elements between output panels must survive,
        // and B panels may sit stride_b > k*n apart (the grouped-conv layout)
        let mut rng = StdRng::seed_from_u64(52);
        let (m, k, n, batch) = (5usize, 9usize, 11usize, 4usize);
        let (stride_b, stride_out) = (k * n + 13, m * n + 17);
        let a = random_matrix(&mut rng, m * k);
        let bs = random_matrix(&mut rng, (batch - 1) * stride_b + k * n);
        let mut expect = vec![-3.5f32; (batch - 1) * stride_out + m * n];
        let mut got = expect.clone();
        batch_reference(
            &a,
            &bs,
            &mut expect,
            m,
            k,
            n,
            batch,
            0,
            stride_b,
            stride_out,
            None,
        );
        gemm_batch_strided(
            &a, &bs, &mut got, m, k, n, batch, 0, stride_b, stride_out, None,
        );
        for (i, (e, g)) in expect.iter().zip(got.iter()).enumerate() {
            assert!(
                (e - g).abs() <= 1e-5 * e.abs().max(1.0),
                "element {i}: {e} vs {g}"
            );
        }
        // the gap elements specifically must still hold the sentinel
        for s in 0..batch {
            for gap in (s * stride_out + m * n)..((s + 1) * stride_out).min(got.len()) {
                assert_eq!(got[gap], -3.5, "gap element {gap} clobbered");
            }
        }
    }

    #[test]
    fn batched_acc_accumulates_on_prior_contents() {
        let mut rng = StdRng::seed_from_u64(53);
        let (m, k, n, batch) = (6usize, 12usize, 10usize, 5usize);
        let a = random_matrix(&mut rng, m * k);
        let bs = random_matrix(&mut rng, batch * k * n);
        let mut once = vec![0.0; batch * m * n];
        gemm_batch_strided(&a, &bs, &mut once, m, k, n, batch, 0, k * n, m * n, None);
        let mut acc = vec![1.0f32; batch * m * n];
        gemm_batch_acc_strided(&a, &bs, &mut acc, m, k, n, batch, 0, k * n, m * n);
        for (o, t) in once.iter().zip(acc.iter()) {
            assert!((o + 1.0 - t).abs() < 1e-4, "{t} should be {o} + 1");
        }
    }

    #[test]
    fn batched_parallel_path_matches_serial_path() {
        let mut rng = StdRng::seed_from_u64(54);
        for (m, k, n, batch, stride_a) in [
            (16usize, 64usize, 16usize, 13usize, 0usize),
            (8, 48, 5, 32, 8 * 48),
        ] {
            let a_panels = if stride_a == 0 { 1 } else { batch };
            let a = random_matrix(&mut rng, a_panels * m * k);
            let bs = random_matrix(&mut rng, batch * k * n);
            let mut serial = vec![0.0; batch * m * n];
            gemm_batch_impl(
                &a,
                &bs,
                &mut serial,
                m,
                k,
                n,
                batch,
                stride_a,
                k * n,
                m * n,
                false,
                None,
                false,
            );
            let mut parallel = vec![0.0; batch * m * n];
            gemm_batch_impl(
                &a,
                &bs,
                &mut parallel,
                m,
                k,
                n,
                batch,
                stride_a,
                k * n,
                m * n,
                false,
                None,
                true,
            );
            assert_eq!(
                serial, parallel,
                "{m}x{k}x{n} b{batch} batched parallel/serial divergence"
            );
        }
    }

    #[test]
    fn batched_nan_stays_inside_its_sample() {
        // a NaN in sample 1's B panel must poison only sample 1's output,
        // even though the n-blocked strips pack samples side by side into
        // one register tile
        let mut rng = StdRng::seed_from_u64(55);
        let (m, k, n, batch) = (MR, 10usize, 6usize, 4usize);
        let a = random_matrix(&mut rng, m * k);
        let mut bs = random_matrix(&mut rng, batch * k * n);
        bs[k * n + 3] = f32::NAN; // sample 1, row 0, col 3
        let mut out = vec![0.0; batch * m * n];
        gemm_batch_strided(&a, &bs, &mut out, m, k, n, batch, 0, k * n, m * n, None);
        for s in 0..batch {
            let panel = &out[s * m * n..(s + 1) * m * n];
            if s == 1 {
                assert!(
                    panel.iter().any(|v| v.is_nan()),
                    "sample 1 must carry the NaN"
                );
            } else {
                assert!(
                    panel.iter().all(|v| !v.is_nan()),
                    "sample {s} polluted by sample 1's NaN"
                );
            }
        }
        // ...and a NaN in the shared A poisons every sample, like gemm
        let mut a_nan = a.clone();
        a_nan[2 * k] = f32::NAN; // row 2
        let bs_clean = random_matrix(&mut rng, batch * k * n);
        let mut out = vec![0.0; batch * m * n];
        gemm_batch_strided(
            &a_nan,
            &bs_clean,
            &mut out,
            m,
            k,
            n,
            batch,
            0,
            k * n,
            m * n,
            None,
        );
        for s in 0..batch {
            let row2 = &out[s * m * n + 2 * n..s * m * n + 3 * n];
            assert!(
                row2.iter().all(|v| v.is_nan()),
                "sample {s} row 2 must be NaN"
            );
        }
    }

    #[test]
    fn batched_zero_dimensions_are_safe() {
        let b = vec![1.0f32; 12];
        let mut out = vec![5.0f32; 12];
        // m == 0 stores nothing; batch == 0 is a no-op
        gemm_batch_strided(&[], &b, &mut out, 0, 3, 2, 2, 0, 6, 0, None);
        gemm_batch_strided(&[], &[], &mut out[..0], 2, 3, 2, 0, 0, 6, 4, None);
        assert_eq!(out, vec![5.0; 12]);
        // k == 0 overwrites with zeros (and still applies an epilogue)
        let mut out = vec![5.0f32; 12];
        gemm_batch_strided(&[], &[], &mut out, 2, 0, 3, 2, 0, 0, 6, None);
        assert_eq!(out, vec![0.0; 12]);
        let scale = vec![1.0f32; 2];
        let shift = vec![2.0f32, -4.0];
        let mut out = vec![5.0f32; 12];
        gemm_batch_strided(
            &[],
            &[],
            &mut out,
            2,
            0,
            3,
            2,
            0,
            0,
            6,
            Some(Epilogue {
                scale: &scale,
                shift: &shift,
                act: EpilogueAct::Relu,
            }),
        );
        assert_eq!(
            out,
            vec![2.0, 2.0, 2.0, 0.0, 0.0, 0.0, 2.0, 2.0, 2.0, 0.0, 0.0, 0.0]
        );
    }

    /// Per-item reference for the cyclic entry points: item `t` multiplies
    /// `A_{t % groups}` with its own B panel via the plain [`gemm`] /
    /// [`gemm_epilogue`], epilogue rows offset by the item's group.
    #[allow(clippy::too_many_arguments)]
    fn cyclic_reference(
        a: &[f32],
        bs: &[f32],
        outs: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        batch: usize,
        groups: usize,
        stride_a: usize,
        stride_b: usize,
        stride_out: usize,
        ep: Option<&Epilogue<'_>>,
    ) {
        for t in 0..batch {
            let g = t % groups;
            let a_g = &a[g * stride_a..g * stride_a + m * k];
            let b_t = &bs[t * stride_b..t * stride_b + k * n];
            let out_t = &mut outs[t * stride_out..t * stride_out + m * n];
            match ep {
                Some(e) => {
                    let e_g = Epilogue {
                        scale: &e.scale[g * m..],
                        shift: &e.shift[g * m..],
                        act: e.act,
                    };
                    gemm_epilogue(a_g, b_t, out_t, m, k, n, &e_g);
                }
                None => gemm(a_g, b_t, out_t, m, k, n),
            }
        }
    }

    #[test]
    fn cyclic_matches_per_item_reference_across_shapes() {
        let mut rng = StdRng::seed_from_u64(60);
        // (m, k, n, groups, per_group): skinny n below NR, strip-spanning
        // boundaries, single group (== shared-A batched), single sample
        for (m, k, n, groups, per_group) in [
            (4usize, 9usize, 4usize, 4usize, 6usize),
            (8, 16, 16, 2, 5),
            (3, 5, 2, 3, 1),
            (16, 32, 7, 1, 9),
            (MR + 1, 21, NR + 3, 2, 3),
        ] {
            let batch = groups * per_group;
            let stride_a = m * k;
            let a = random_matrix(&mut rng, groups * stride_a);
            let bs = random_matrix(&mut rng, batch * k * n);
            let mut expect = vec![0.0; batch * m * n];
            cyclic_reference(
                &a,
                &bs,
                &mut expect,
                m,
                k,
                n,
                batch,
                groups,
                stride_a,
                k * n,
                m * n,
                None,
            );
            // stale output contents must be ignored (overwrite semantics)
            let mut got = vec![777.0; batch * m * n];
            gemm_batch_cyclic_strided(
                &a,
                &bs,
                &mut got,
                m,
                k,
                n,
                batch,
                groups,
                stride_a,
                k * n,
                m * n,
                None,
            );
            assert_close(
                &expect,
                &got,
                1e-5,
                &format!("{m}x{k}x{n} g{groups} b{batch}"),
            );
        }
    }

    #[test]
    fn cyclic_epilogue_selects_per_group_rows() {
        let mut rng = StdRng::seed_from_u64(61);
        let (m, k, n, groups, per_group) = (5usize, 12usize, 6usize, 3usize, 4usize);
        let batch = groups * per_group;
        let a = random_matrix(&mut rng, groups * m * k);
        let bs = random_matrix(&mut rng, batch * k * n);
        // distinct scale/shift per group so a row-offset mistake shows up
        let scale = random_matrix(&mut rng, groups * m);
        let shift = random_matrix(&mut rng, groups * m);
        for act in [EpilogueAct::None, EpilogueAct::Relu, EpilogueAct::Relu6] {
            let ep = Epilogue {
                scale: &scale,
                shift: &shift,
                act,
            };
            let mut expect = vec![0.0; batch * m * n];
            cyclic_reference(
                &a,
                &bs,
                &mut expect,
                m,
                k,
                n,
                batch,
                groups,
                m * k,
                k * n,
                m * n,
                Some(&ep),
            );
            let mut got = vec![0.0; batch * m * n];
            gemm_batch_cyclic_strided(
                &a,
                &bs,
                &mut got,
                m,
                k,
                n,
                batch,
                groups,
                m * k,
                k * n,
                m * n,
                Some(ep),
            );
            assert_close(&expect, &got, 1e-4, &format!("{act:?}"));
        }
    }

    #[test]
    fn cyclic_acc_accumulates_and_shared_a_works() {
        let mut rng = StdRng::seed_from_u64(62);
        let (m, k, n, groups, per_group) = (4usize, 8usize, 5usize, 2usize, 3usize);
        let batch = groups * per_group;
        // stride_a == 0: every group shares one A panel
        let a = random_matrix(&mut rng, m * k);
        let bs = random_matrix(&mut rng, batch * k * n);
        let init = random_matrix(&mut rng, batch * m * n);
        let mut expect = vec![0.0; batch * m * n];
        cyclic_reference(
            &a,
            &bs,
            &mut expect,
            m,
            k,
            n,
            batch,
            groups,
            0,
            k * n,
            m * n,
            None,
        );
        for (e, i) in expect.iter_mut().zip(init.iter()) {
            *e += i;
        }
        let mut got = init;
        gemm_batch_cyclic_acc_strided(&a, &bs, &mut got, m, k, n, batch, groups, 0, k * n, m * n);
        assert_close(&expect, &got, 1e-5, "cyclic acc shared A");
    }

    #[test]
    fn cyclic_parallel_path_matches_serial_path() {
        let mut rng = StdRng::seed_from_u64(63);
        let (m, k, n, groups, per_group) = (8usize, 24usize, 9usize, 4usize, 16usize);
        let batch = groups * per_group;
        let a = random_matrix(&mut rng, groups * m * k);
        let bs = random_matrix(&mut rng, batch * k * n);
        let mut serial = vec![0.0; batch * m * n];
        gemm_batch_cyclic_impl(
            a.as_slice(),
            &bs,
            &mut serial,
            m,
            k,
            n,
            batch,
            groups,
            m * k,
            k * n,
            m * n,
            false,
            None,
            false,
        );
        let mut parallel = vec![0.0; batch * m * n];
        gemm_batch_cyclic_impl(
            a.as_slice(),
            &bs,
            &mut parallel,
            m,
            k,
            n,
            batch,
            groups,
            m * k,
            k * n,
            m * n,
            false,
            None,
            true,
        );
        assert_eq!(serial, parallel, "band split must not change results");
    }

    #[test]
    #[should_panic(expected = "must be a multiple of groups")]
    fn cyclic_rejects_ragged_group_batches() {
        let a = vec![0.0f32; 8];
        let b = vec![0.0f32; 20];
        let mut out = vec![0.0f32; 10];
        gemm_batch_cyclic_strided(&a, &b, &mut out, 2, 2, 2, 5, 2, 4, 4, 4, None);
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = StdRng::seed_from_u64(5);
        for (r, c) in [(1usize, 1usize), (3, 8), (31, 33), (64, 65)] {
            let src = random_matrix(&mut rng, r * c);
            let mut t = vec![0.0; r * c];
            transpose_into(&src, &mut t, r, c);
            let mut back = vec![0.0; r * c];
            transpose_into(&t, &mut back, c, r);
            assert_eq!(src, back, "{r}x{c}");
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t[j * r + i], src[i * c + j]);
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Quantized (_q) entry points: convert-on-pack must equal quantize-then-
    // f32-GEMM exactly (the widened values are identical bit patterns).
    // -----------------------------------------------------------------------

    fn quantize_f16(w: &[f32]) -> Vec<u16> {
        w.iter()
            .map(|&v| crate::dtype::f32_to_f16_bits(v))
            .collect()
    }

    fn widen_f16(bits: &[u16]) -> Vec<f32> {
        bits.iter()
            .map(|&h| crate::dtype::f16_bits_to_f32(h))
            .collect()
    }

    #[test]
    fn gemm_epilogue_q_f16_equals_widened_f32_gemm() {
        let mut rng = StdRng::seed_from_u64(11);
        for (m, k, n) in [
            (5usize, 9usize, 7usize),
            (MR, KC, NR),
            (70, 33, 50),
            (97, 64, 13),
        ] {
            let w = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let bits = quantize_f16(&w);
            let wide = widen_f16(&bits);
            let scale: Vec<f32> = (0..m).map(|i| 0.5 + 0.01 * i as f32).collect();
            let shift: Vec<f32> = (0..m).map(|i| -0.2 + 0.02 * i as f32).collect();
            let ep = Epilogue {
                scale: &scale,
                shift: &shift,
                act: EpilogueAct::LeakyRelu(0.1),
            };
            let mut expect = vec![0.0; m * n];
            gemm_epilogue(&wide, &b, &mut expect, m, k, n, &ep);
            let mut got = vec![1.0; m * n];
            gemm_epilogue_q(WeightMat::F16(&bits), &b, &mut got, m, k, n, &ep);
            assert_eq!(expect, got, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_acc_q_i8_equals_dequantized_f32_gemm() {
        let mut rng = StdRng::seed_from_u64(12);
        let (m, k, n) = (23usize, 31usize, 19usize);
        let w = random_matrix(&mut rng, m * k);
        let b = random_matrix(&mut rng, k * n);
        let scale = crate::dtype::i8_scale(&w);
        let q: Vec<i8> = w
            .iter()
            .map(|&v| crate::dtype::f32_to_i8(v, scale))
            .collect();
        let deq: Vec<f32> = q.iter().map(|&v| v as f32 * scale).collect();
        let mut expect = vec![0.25; m * n];
        gemm_acc(&deq, &b, &mut expect, m, k, n);
        let mut got = vec![0.25; m * n];
        gemm_acc_q(WeightMat::I8 { data: &q, scale }, &b, &mut got, m, k, n);
        assert_eq!(expect, got);
    }

    #[test]
    fn gemm_nt_q_f16_equals_widened_gemm_nt() {
        let mut rng = StdRng::seed_from_u64(13);
        for (m, k, n) in [(4usize, 12usize, 10usize), (32, 64, 48), (1, 100, 257)] {
            let a = random_matrix(&mut rng, m * k);
            let w = random_matrix(&mut rng, n * k);
            let bits = quantize_f16(&w);
            let wide = widen_f16(&bits);
            let mut expect = vec![0.0; m * n];
            gemm_nt(&a, &wide, &mut expect, m, k, n);
            let mut got = vec![0.0; m * n];
            gemm_nt_q(&a, WeightMat::F16(&bits), &mut got, m, k, n);
            assert_eq!(expect, got, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn cyclic_q_f16_equals_widened_cyclic_both_paths() {
        let mut rng = StdRng::seed_from_u64(14);
        let (m, k, n, groups, samples) = (6usize, 18usize, 11usize, 3usize, 8usize);
        let batch = groups * samples;
        let w = random_matrix(&mut rng, groups * m * k);
        let bs = random_matrix(&mut rng, batch * k * n);
        let bits = quantize_f16(&w);
        let wide = widen_f16(&bits);
        let scale: Vec<f32> = (0..groups * m).map(|i| 0.8 + 0.01 * i as f32).collect();
        let shift: Vec<f32> = (0..groups * m).map(|i| 0.1 * i as f32).collect();
        let ep = Epilogue {
            scale: &scale,
            shift: &shift,
            act: EpilogueAct::Relu,
        };
        for parallel in [false, true] {
            let mut expect = vec![0.0; batch * m * n];
            gemm_batch_cyclic_impl(
                &wide[..],
                &bs,
                &mut expect,
                m,
                k,
                n,
                batch,
                groups,
                m * k,
                k * n,
                m * n,
                false,
                Some(ep),
                parallel,
            );
            let mut got = vec![0.5; batch * m * n];
            with_elems!(WeightMat::F16(&bits), aa => gemm_batch_cyclic_impl(
                aa,
                &bs,
                &mut got,
                m,
                k,
                n,
                batch,
                groups,
                m * k,
                k * n,
                m * n,
                false,
                Some(ep),
                parallel,
            ));
            assert_eq!(expect, got, "parallel={parallel}");
        }
        // the public acc entry: bias-style initial value preserved
        let mut expect = vec![0.3; batch * m * n];
        gemm_batch_cyclic_acc_strided(
            &wide,
            &bs,
            &mut expect,
            m,
            k,
            n,
            batch,
            groups,
            m * k,
            k * n,
            m * n,
        );
        let mut got = vec![0.3; batch * m * n];
        gemm_batch_cyclic_acc_strided_q(
            WeightMat::F16(&bits),
            &bs,
            &mut got,
            m,
            k,
            n,
            batch,
            groups,
            m * k,
            k * n,
            m * n,
        );
        assert_eq!(expect, got);
    }

    #[test]
    fn weight_mat_slice_matches_slice_semantics() {
        let w: Vec<f32> = (0..12).map(|x| x as f32).collect();
        let bits = quantize_f16(&w);
        let mat = WeightMat::F16(&bits);
        assert_eq!(mat.len(), 12);
        assert_eq!(mat.dtype(), crate::dtype::DType::F16);
        let sub = mat.slice(4, 8);
        assert_eq!(sub.len(), 4);
        match sub {
            WeightMat::F16(s) => assert_eq!(s, &bits[4..8]),
            _ => panic!("slice changed dtype"),
        }
    }
}
