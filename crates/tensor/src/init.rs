//! Weight-initialisation helpers.
//!
//! The network stack uses these to initialise convolution and dense layers.
//! Each helper takes an explicit [`StdRng`] so that every experiment in the
//! reproduction is deterministic given its seed.

use crate::Tensor;
use rand::rngs::StdRng;

/// He (Kaiming) normal initialisation: `N(0, sqrt(2 / fan_in))`.
///
/// Suited to ReLU-family activations, which are used throughout the mobile
/// model zoo.
pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::rand_normal(dims, 0.0, std, rng)
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

/// Plain uniform initialisation over `[low, high)`.
pub fn uniform(dims: &[usize], low: f32, high: f32, rng: &mut StdRng) -> Tensor {
    Tensor::rand_uniform(dims, low, high, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn he_normal_std_tracks_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = he_normal(&[20000], 8, &mut rng);
        let expected = (2.0f32 / 8.0).sqrt();
        assert!((t.variance().sqrt() - expected).abs() < 0.05);
    }

    #[test]
    fn xavier_uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform(&[1000], 10, 10, &mut rng);
        let a = (6.0f32 / 20.0).sqrt();
        assert!(t.max() <= a);
        assert!(t.min() >= -a);
    }

    #[test]
    fn initialisation_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ta = he_normal(&[16], 4, &mut a);
        let tb = he_normal(&[16], 4, &mut b);
        assert_eq!(ta.as_slice(), tb.as_slice());
    }
}
