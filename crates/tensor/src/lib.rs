//! # hs-tensor
//!
//! A minimal, dependency-light `f32` n-dimensional tensor library used as the
//! numerical substrate for the HeteroSwitch reproduction. It provides exactly
//! what the neural-network stack (`hs-nn`), the ISP pipeline (`hs-isp`) and
//! the federated-learning simulator (`hs-fl`) need:
//!
//! * contiguous row-major storage with shape/stride bookkeeping,
//! * element-wise arithmetic and mapping,
//! * 2-D matrix multiplication and transposition,
//! * reductions (sum, mean, max, argmax) over the whole tensor or an axis,
//! * random initialisation helpers with explicit, seedable RNGs.
//!
//! The library deliberately avoids `unsafe`, BLAS bindings and SIMD
//! intrinsics: the reproduction targets *trend fidelity* of the paper's
//! experiments on commodity CPUs, not peak throughput.
//!
//! ```
//! use hs_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod init;
mod ops;
mod shape;
mod tensor;

pub use error::TensorError;
pub use init::{he_normal, uniform, xavier_uniform};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias for results produced by fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
