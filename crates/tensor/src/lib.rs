//! # hs-tensor
//!
//! A minimal, dependency-light `f32` n-dimensional tensor library used as the
//! numerical substrate for the HeteroSwitch reproduction. It provides exactly
//! what the neural-network stack (`hs-nn`), the ISP pipeline (`hs-isp`) and
//! the federated-learning simulator (`hs-fl`) need:
//!
//! * contiguous row-major storage with shape/stride bookkeeping,
//! * element-wise arithmetic and mapping,
//! * 2-D matrix multiplication and transposition,
//! * reductions (sum, mean, max, argmax) over the whole tensor or an axis,
//! * random initialisation helpers with explicit, seedable RNGs.
//!
//! The hot paths run on the [`gemm`] kernel layer: a cache-blocked,
//! register-tiled GEMM with runtime-dispatched AVX-512/AVX2 micro-kernels
//! and row-block parallelism on the shared `hs_parallel` pool. Two
//! specialised convolution kernels sit beside it — [`winograd`] (F(2×2,
//! 3×3) tile transforms over batched tile-GEMMs) and
//! [`depthwise_conv2d`] (direct per-channel spatial convolution) — both
//! sharing the GEMM epilogue's fused scale/shift+activation semantics.
//! The seed's scalar kernels are preserved in [`naive`] as the correctness
//! reference. `unsafe` is confined to the SIMD micro-kernels in `gemm.rs`
//! (see that module's safety notes); everything else in the crate denies
//! it.
//!
//! ```
//! use hs_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)] // allowed only inside gemm.rs's SIMD micro-kernels

mod depthwise;
pub mod dtype;
mod error;
pub mod gemm;
mod init;
pub mod naive;
mod ops;
mod shape;
pub mod storage;
mod tensor;
pub mod winograd;

pub use depthwise::{depthwise_conv2d, valid_out_range};
pub use dtype::{f16_bits_to_f32, f32_to_f16_bits, DType};
pub use error::TensorError;
pub use gemm::{
    gemm, gemm_acc, gemm_acc_q, gemm_batch_acc_strided, gemm_batch_cyclic_acc_strided,
    gemm_batch_cyclic_acc_strided_q, gemm_batch_cyclic_strided, gemm_batch_cyclic_strided_q,
    gemm_batch_strided, gemm_epilogue, gemm_epilogue_q, gemm_nt, gemm_nt_q, gemm_tn,
    transpose_into, Epilogue, EpilogueAct, WeightMat,
};
pub use init::{he_normal, uniform, xavier_uniform};
pub use naive::matmul_naive;
pub use shape::Shape;
pub use storage::{F16Storage, I8Storage, QTensor, Storage};
pub use tensor::{Tensor, TensorBase, TensorF16, TensorI8};
pub use winograd::{winograd_conv3x3, winograd_conv3x3_q};

/// Convenience alias for results produced by fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
