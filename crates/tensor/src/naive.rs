//! Reference kernels: the seed's scalar implementations, kept verbatim in
//! spirit as the ground truth that the blocked GEMM layer is tested and
//! benchmarked against.
//!
//! Two deliberate differences from the original seed code:
//!
//! * the `if a_ip == 0.0 { continue; }` skip branch is gone — it silently
//!   dropped NaN/Inf propagation (`0.0 * NaN` must stay `NaN`) and put a
//!   branch in a hot loop, so the reference now has plain IEEE semantics
//!   matching the optimised path bit-for-bit on special values;
//! * the kernels write into caller-provided buffers like the fast path, so
//!   benches compare compute, not allocator behaviour.

/// The seed's i-k-j matrix multiplication: `out = A * B` for row-major
/// `A: [m, k]`, `B: [k, n]`. Kept as the correctness reference for
/// [`gemm`](crate::gemm::gemm) parity tests and as the baseline in the
/// `nn_kernels` criterion bench.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` contract.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= m * k, "A too short");
    assert!(b.len() >= k * n, "B too short");
    assert!(out.len() >= m * n, "out too short");
    out[..m * n].fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
}
