//! Linear-algebra and axis-wise operations on [`Tensor`].
//!
//! These live in their own module (as inherent methods on [`Tensor`]) to keep
//! `tensor.rs` focused on storage, constructors and element-wise math.

use crate::Tensor;

impl Tensor {
    /// Matrix multiplication of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Runs on the blocked, SIMD-dispatched [`gemm`](crate::gemm::gemm)
    /// kernel layer; large products parallelise over row blocks on the
    /// shared `hs_parallel` pool.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, _, n) = self.matmul_dims(other);
        let mut out = vec![0.0f32; m * n];
        self.matmul_into(other, &mut out);
        Tensor::from_vec(out, &[m, n])
    }

    /// [`Tensor::matmul`] writing into a caller-provided buffer (first
    /// `m * n` elements are overwritten), so hot loops can reuse storage.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches or if `out` is shorter than `m * n`.
    pub fn matmul_into(&self, other: &Tensor, out: &mut [f32]) {
        let (m, k, n) = self.matmul_dims(other);
        crate::gemm::gemm(self.as_slice(), other.as_slice(), out, m, k, n);
    }

    /// `A * B^T` for `A: [m, k]`, `B: [n, k]`, without materialising the
    /// transpose as a `Tensor` — it is staged in the kernel layer's
    /// thread-local scratch ([`crate::gemm::gemm_nt`]), so steady-state
    /// calls allocate only the result.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the `k` dimensions differ.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt requires rank-2 left operand");
        assert_eq!(other.rank(), 2, "matmul_nt requires rank-2 right operand");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt inner dimensions must agree ({k} vs {k2})");
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm_nt(self.as_slice(), other.as_slice(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `A^T * B` for `A: [k, m]`, `B: [k, n]`, without materialising the
    /// transpose as a `Tensor` ([`crate::gemm::gemm_tn`]).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the `k` dimensions differ.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn requires rank-2 left operand");
        assert_eq!(other.rank(), 2, "matmul_tn requires rank-2 right operand");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn inner dimensions must agree ({k} vs {k2})");
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm_tn(self.as_slice(), other.as_slice(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// The seed's scalar i-k-j matmul, kept as the reference implementation
    /// for parity tests and benchmarks (see [`crate::naive`]).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul_naive(&self, other: &Tensor) -> Tensor {
        let (m, k, n) = self.matmul_dims(other);
        let mut out = vec![0.0f32; m * n];
        crate::naive::matmul_naive(self.as_slice(), other.as_slice(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    fn matmul_dims(&self, other: &Tensor) -> (usize, usize, usize) {
        assert_eq!(self.rank(), 2, "matmul requires rank-2 left operand");
        assert_eq!(other.rank(), 2, "matmul requires rank-2 right operand");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dimensions must agree ({k} vs {k2})");
        (m, k, n)
    }

    /// Sums along `axis`, removing that axis from the result.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        let rank = self.rank();
        assert!(axis < rank, "axis {axis} out of range for rank {rank}");
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let ax = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![0.0f32; outer * inner];
        let data = self.as_slice();
        for o in 0..outer {
            for a in 0..ax {
                let base = (o * ax + a) * inner;
                let out_base = o * inner;
                for i in 0..inner {
                    out[out_base + i] += data[base + i];
                }
            }
        }
        let mut out_dims: Vec<usize> = dims[..axis].to_vec();
        out_dims.extend_from_slice(&dims[axis + 1..]);
        if out_dims.is_empty() {
            out_dims.push(1);
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Mean along `axis`, removing that axis from the result.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()` or the axis has zero length.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let ax = self.dims()[axis];
        assert!(ax > 0, "mean_axis over an empty axis");
        self.sum_axis(axis).scale(1.0 / ax as f32)
    }

    /// Row-wise argmax of a rank-2 tensor (`[n, c] -> n indices`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires a rank-2 tensor");
        let (n, c) = (self.dims()[0], self.dims()[1]);
        assert!(c > 0, "argmax_rows requires at least one column");
        let data = self.as_slice();
        (0..n)
            .map(|i| {
                let row = &data[i * c..(i + 1) * c];
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Row-wise softmax of a rank-2 tensor, numerically stabilised by
    /// subtracting the row maximum.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "softmax_rows requires a rank-2 tensor");
        let (n, c) = (self.dims()[0], self.dims()[1]);
        let data = self.as_slice();
        let mut out = vec![0.0f32; n * c];
        for i in 0..n {
            let row = &data[i * c..(i + 1) * c];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - max).exp();
                out[i * c + j] = e;
                denom += e;
            }
            for j in 0..c {
                out[i * c + j] /= denom;
            }
        }
        Tensor::from_vec(out, &[n, c])
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot requires equal lengths");
        self.as_slice()
            .iter()
            .zip(other.as_slice().iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Adds a rank-1 bias of length `c` to every row of a rank-2 `[n, c]`
    /// tensor, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on rank or length mismatches.
    pub fn add_row_bias(&self, bias: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_row_bias_assign(bias);
        out
    }

    /// In-place variant of [`Tensor::add_row_bias`].
    ///
    /// # Panics
    ///
    /// Panics on rank or length mismatches.
    pub fn add_row_bias_assign(&mut self, bias: &Tensor) {
        assert_eq!(self.rank(), 2, "add_row_bias requires a rank-2 tensor");
        assert_eq!(bias.rank(), 1, "bias must be rank 1");
        let (n, c) = (self.dims()[0], self.dims()[1]);
        assert_eq!(bias.len(), c, "bias length must equal the column count");
        let b = bias.as_slice();
        let data = self.as_mut_slice();
        for i in 0..n {
            for (o, bv) in data[i * c..(i + 1) * c].iter_mut().zip(b.iter()) {
                *o += bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_matches_transpose_identity() {
        // (A B)^T == B^T A^T
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 0.5, -1.0, 2.0, 0.0, 1.0], &[3, 2]);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((l - r).abs() < 1e-5);
        }
    }

    #[test]
    fn sum_axis_middle() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let s = t.sum_axis(1);
        assert_eq!(s.dims(), &[2, 4]);
        // first output element = t[0,0,0] + t[0,1,0] + t[0,2,0] = 0 + 4 + 8
        assert_eq!(s.at(&[0, 0]), 12.0);
    }

    #[test]
    fn mean_axis_first() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let m = t.mean_axis(0);
        assert_eq!(m.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.3, 0.2, 0.5], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_rows();
        for i in 0..2 {
            let row_sum: f32 = (0..3).map(|j| s.at(&[i, j])).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        assert!(s.at(&[0, 2]) > s.at(&[0, 0]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let s = t.softmax_rows();
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn add_row_bias_broadcasts() {
        let x = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let y = x.add_row_bias(&b);
        assert_eq!(y.at(&[0, 1]), 2.0);
        assert_eq!(y.at(&[1, 2]), 3.0);
    }
}
