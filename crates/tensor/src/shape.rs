//! Shape and stride bookkeeping for row-major contiguous tensors.

use serde::{Deserialize, Serialize};

/// Dimensions of a tensor, stored outermost-first (row-major).
///
/// `Shape` is a thin wrapper around a `Vec<usize>` that caches nothing and
/// recomputes strides on demand; tensors in this workspace are small enough
/// that the simplicity is worth far more than the saved multiplications.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimensions.
    ///
    /// A zero-length slice denotes a scalar; dimensions of size zero are
    /// permitted and yield empty tensors.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Returns the dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Overwrites this shape with `dims`, reusing the existing storage — the
    /// allocation-free companion of [`Shape::new`] used by the inference
    /// arena's [`crate::Tensor::resize_to`].
    pub(crate) fn copy_from(&mut self, dims: &[usize]) {
        self.0.clear();
        self.0.extend_from_slice(dims);
    }

    /// Number of dimensions (the tensor rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements described by this shape.
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, i.e. the number of elements to skip to advance one
    /// step along each axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds; this is an internal indexing primitive and misuse is a bug.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.0.len()
        );
        let strides = self.strides();
        let mut offset = 0;
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} (size {d})");
            offset += i * strides[axis];
        }
        offset
    }

    /// Returns the size of a given axis.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_is_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).num_elements(), 24);
        assert_eq!(Shape::new(&[]).num_elements(), 1);
        assert_eq!(Shape::new(&[5, 0]).num_elements(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
    }

    #[test]
    fn flat_index_round_trip() {
        let shape = Shape::new(&[2, 3, 4]);
        assert_eq!(shape.flat_index(&[0, 0, 0]), 0);
        assert_eq!(shape.flat_index(&[1, 2, 3]), 23);
        assert_eq!(shape.flat_index(&[1, 0, 2]), 14);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_rejects_out_of_bounds() {
        Shape::new(&[2, 2]).flat_index(&[2, 0]);
    }
}
