//! Storage backends for [`TensorBase`](crate::TensorBase): the trait every
//! backing buffer implements plus the f16 and i8 quantized stores and the
//! [`QTensor`] enum that carries "some quantized tensor" through the layer
//! stack without making every layer generic.

use crate::dtype::{f16_bits_to_f32, f32_to_f16_bits, f32_to_i8, i8_scale, DType};
use crate::gemm::WeightMat;
use crate::{Tensor, TensorBase};

/// A contiguous, row-major element store behind a tensor.
///
/// Implementations own their buffer and know how to convert to and from the
/// `f32` compute type; shape bookkeeping stays in
/// [`TensorBase`](crate::TensorBase), per the shape/storage split the
/// GPU-style tensor designs use.
pub trait Storage: Clone + PartialEq + std::fmt::Debug + Send + Sync {
    /// The element dtype this storage holds.
    const DTYPE: DType;

    /// Number of elements stored.
    fn len(&self) -> usize;

    /// Whether the store holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Widens every element into `out` (which must hold exactly
    /// [`Storage::len`] values).
    fn dequantize_into(&self, out: &mut [f32]);

    /// Builds a store holding the closest representable values to `data`.
    fn quantize_from(data: &[f32]) -> Self;
}

impl Storage for Vec<f32> {
    const DTYPE: DType = DType::F32;

    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn dequantize_into(&self, out: &mut [f32]) {
        out.copy_from_slice(self);
    }

    fn quantize_from(data: &[f32]) -> Self {
        data.to_vec()
    }
}

/// IEEE binary16 storage: raw bit patterns, half the bytes of `f32`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct F16Storage {
    bits: Vec<u16>,
}

impl F16Storage {
    /// Wraps raw binary16 bit patterns (e.g. from a checkpoint payload).
    pub fn from_bits(bits: Vec<u16>) -> Self {
        F16Storage { bits }
    }

    /// The raw binary16 bit patterns.
    pub fn bits(&self) -> &[u16] {
        &self.bits
    }
}

impl Storage for F16Storage {
    const DTYPE: DType = DType::F16;

    fn len(&self) -> usize {
        self.bits.len()
    }

    fn dequantize_into(&self, out: &mut [f32]) {
        for (o, &h) in out.iter_mut().zip(&self.bits) {
            *o = f16_bits_to_f32(h);
        }
    }

    fn quantize_from(data: &[f32]) -> Self {
        F16Storage {
            bits: data.iter().map(|&v| f32_to_f16_bits(v)).collect(),
        }
    }
}

/// Symmetric per-tensor int8 storage: one `f32` scale for the whole tensor,
/// `value = q * scale`.
#[derive(Clone, PartialEq, Debug)]
pub struct I8Storage {
    data: Vec<i8>,
    scale: f32,
}

impl I8Storage {
    /// Wraps pre-quantized values with their scale (e.g. from a checkpoint
    /// payload).
    pub fn from_parts(data: Vec<i8>, scale: f32) -> Self {
        I8Storage { data, scale }
    }

    /// The quantized values.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The per-tensor dequantisation scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

impl Storage for I8Storage {
    const DTYPE: DType = DType::I8;

    fn len(&self) -> usize {
        self.data.len()
    }

    fn dequantize_into(&self, out: &mut [f32]) {
        for (o, &q) in out.iter_mut().zip(&self.data) {
            *o = q as f32 * self.scale;
        }
    }

    fn quantize_from(data: &[f32]) -> Self {
        let scale = i8_scale(data);
        I8Storage {
            data: data.iter().map(|&v| f32_to_i8(v, scale)).collect(),
            scale,
        }
    }
}

/// A quantized tensor of runtime-selected dtype — the non-generic handle the
/// layer stack stores so `Box<dyn Layer>` objects stay object-safe while
/// their weights change storage class at [`Network::to_dtype`] time.
#[derive(Clone, PartialEq, Debug)]
pub enum QTensor {
    /// Binary16 weight storage.
    F16(TensorBase<F16Storage>),
    /// Symmetric per-tensor int8 weight storage.
    I8(TensorBase<I8Storage>),
}

impl QTensor {
    /// Quantises an `f32` tensor into the requested storage dtype. `None`
    /// for [`DType::F32`], which needs no `QTensor` at all.
    pub fn quantize(src: &Tensor, dtype: DType) -> Option<QTensor> {
        match dtype {
            DType::F32 => None,
            DType::F16 => Some(QTensor::F16(TensorBase::quantize(src))),
            DType::I8 => Some(QTensor::I8(TensorBase::quantize(src))),
        }
    }

    /// The storage dtype.
    pub fn dtype(&self) -> DType {
        match self {
            QTensor::F16(_) => DType::F16,
            QTensor::I8(_) => DType::I8,
        }
    }

    /// The tensor dimensions.
    pub fn dims(&self) -> &[usize] {
        match self {
            QTensor::F16(t) => t.dims(),
            QTensor::I8(t) => t.dims(),
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        match self {
            QTensor::F16(t) => t.len(),
            QTensor::I8(t) => t.len(),
        }
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Widens back to an `f32` tensor (lossy relative to the original
    /// pre-quantisation values, exact for the stored ones).
    pub fn to_f32(&self) -> Tensor {
        match self {
            QTensor::F16(t) => t.to_f32(),
            QTensor::I8(t) => t.to_f32(),
        }
    }

    /// The flat GEMM operand view over the quantized elements, ready to hand
    /// to the `_q` GEMM entry points (`gemm_epilogue_q` and friends).
    pub fn as_mat(&self) -> WeightMat<'_> {
        match self {
            QTensor::F16(t) => WeightMat::F16(t.storage().bits()),
            QTensor::I8(t) => WeightMat::I8 {
                data: t.storage().data(),
                scale: t.storage().scale(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn f16_storage_round_trips_representable_values() {
        let src = Tensor::from_vec(vec![0.0, 1.0, -2.5, 0.25, -0.125], &[5]);
        let q = QTensor::quantize(&src, DType::F16).unwrap();
        assert_eq!(q.dims(), &[5]);
        assert_eq!(q.dtype(), DType::F16);
        assert_eq!(q.to_f32().as_slice(), src.as_slice());
    }

    #[test]
    fn f16_storage_is_close_on_random_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let src = Tensor::rand_uniform(&[512], -2.0, 2.0, &mut rng);
        let q = QTensor::quantize(&src, DType::F16).unwrap();
        for (a, b) in src.as_slice().iter().zip(q.to_f32().as_slice()) {
            // f16 has 11 significand bits: relative error <= 2^-11
            assert!((a - b).abs() <= a.abs() * 4.9e-4 + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn i8_storage_bounds_the_quantisation_error() {
        let mut rng = StdRng::seed_from_u64(4);
        let src = Tensor::rand_uniform(&[256], -1.5, 1.5, &mut rng);
        let q = QTensor::quantize(&src, DType::I8).unwrap();
        let QTensor::I8(ref t) = q else {
            unreachable!()
        };
        let scale = t.storage().scale();
        for (a, b) in src.as_slice().iter().zip(q.to_f32().as_slice()) {
            assert!((a - b).abs() <= scale * 0.5 + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn f32_needs_no_qtensor() {
        let src = Tensor::ones(&[3]);
        assert!(QTensor::quantize(&src, DType::F32).is_none());
    }

    #[test]
    fn weight_mat_views_expose_the_raw_payload() {
        let src = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        match QTensor::quantize(&src, DType::F16).unwrap().as_mat() {
            WeightMat::F16(bits) => assert_eq!(bits, &[0x3c00, 0xbc00]),
            _ => panic!("expected an f16 view"),
        }
        match QTensor::quantize(&src, DType::I8).unwrap().as_mat() {
            WeightMat::I8 { data, scale } => {
                assert_eq!(data, &[127, -127]);
                assert!((scale - 1.0 / 127.0).abs() < 1e-9);
            }
            _ => panic!("expected an i8 view"),
        }
    }
}
