//! The [`Tensor`] type: contiguous, row-major storage with a shape.
//!
//! Storage is generic: [`TensorBase<S>`] pairs any [`Storage`] backend with a
//! [`Shape`], and [`Tensor`] is the alias for the `f32` instantiation that
//! the whole compute stack is written against. Quantized instantiations
//! ([`TensorF16`], [`TensorI8`]) carry inference weights at half or quarter
//! the bytes; the GEMM packing layer widens them back to `f32` on the fly.

use crate::dtype::DType;
use crate::storage::Storage;
use crate::{Result, Shape, TensorError};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense, row-major tensor over a [`Storage`] backend `S`.
///
/// The shape bookkeeping lives here; the element representation (and its
/// dtype) lives in `S`. Compute paths use the `f32` alias [`Tensor`]; the
/// quantized instantiations exist to hold inference weights compactly and
/// convert at the storage boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorBase<S> {
    data: S,
    shape: Shape,
}

/// A dense, row-major `f32` tensor — the compute dtype everywhere.
///
/// All data is stored contiguously in a `Vec<f32>`. The type favours a small,
/// predictable API over generality: every operation allocates its result and
/// nothing is lazy, which keeps the training stack above it easy to reason
/// about and to test.
pub type Tensor = TensorBase<Vec<f32>>;

/// A tensor holding IEEE binary16 weight storage.
pub type TensorF16 = TensorBase<crate::storage::F16Storage>;

/// A tensor holding symmetric per-tensor int8 weight storage.
pub type TensorI8 = TensorBase<crate::storage::I8Storage>;

impl<S: Storage> TensorBase<S> {
    /// Wraps an existing storage buffer with a shape.
    ///
    /// # Panics
    ///
    /// Panics if the storage length does not equal the product of `dims`.
    pub fn from_storage(data: S, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.num_elements(),
            "storage holds {} elements but shape {:?} needs {}",
            data.len(),
            dims,
            shape.num_elements()
        );
        TensorBase { data, shape }
    }

    /// Quantises an `f32` tensor into this tensor's storage dtype.
    pub fn quantize(src: &Tensor) -> Self {
        TensorBase {
            data: S::quantize_from(src.as_slice()),
            shape: src.shape.clone(),
        }
    }

    /// Widens back to an `f32` tensor.
    pub fn to_f32(&self) -> Tensor {
        let mut data = vec![0.0f32; Storage::len(&self.data)];
        self.data.dequantize_into(&mut data);
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// The element dtype of the backing storage.
    pub fn dtype(&self) -> DType {
        S::DTYPE
    }

    /// Read-only view of the backing storage.
    pub fn storage(&self) -> &S {
        &self.data
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        Storage::len(&self.data)
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        Storage::is_empty(&self.data)
    }
}

impl Tensor {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.num_elements()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.num_elements()],
            shape,
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `dims`. Use
    /// [`Tensor::try_from_vec`] for a fallible variant.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let len = data.len();
        Tensor::try_from_vec(data, dims).unwrap_or_else(|e| {
            panic!("Tensor::from_vec: {len} data elements do not fit shape {dims:?} ({e})")
        })
    }

    /// Fallible variant of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the data length does not
    /// match the shape.
    pub fn try_from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.num_elements() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            data: data.to_vec(),
            shape: Shape::new(&[data.len()]),
        }
    }

    /// Creates a tensor with values drawn uniformly from `[low, high)`.
    pub fn rand_uniform(dims: &[usize], low: f32, high: f32, rng: &mut StdRng) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.num_elements())
            .map(|_| rng.gen_range(low..high))
            .collect();
        Tensor { data, shape }
    }

    /// Creates a tensor with values drawn from a normal distribution with the
    /// given mean and standard deviation (Box–Muller transform).
    pub fn rand_normal(dims: &[usize], mean: f32, std: f32, rng: &mut StdRng) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor { data, shape }
    }

    // ---------------------------------------------------------------------
    // Accessors (shape/dims/rank/len/is_empty live on `TensorBase<S>`)
    // ---------------------------------------------------------------------

    /// Read-only view of the underlying data in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access via a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.flat_index(index)]
    }

    /// Mutable element access via a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let i = self.shape.flat_index(index);
        &mut self.data[i]
    }

    /// Returns the single value of a scalar (1-element) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.len(), 1, "scalar() requires exactly one element");
        self.data[0]
    }

    // ---------------------------------------------------------------------
    // Shape manipulation
    // ---------------------------------------------------------------------

    /// Reshapes this tensor in place to `dims`, resizing the backing buffer
    /// while reusing its capacity. Existing element values are unspecified
    /// afterwards (grown regions are zero-filled) — this is the arena
    /// primitive behind the inference forward plan: after warm-up a
    /// `resize_to` to a previously seen size allocates nothing.
    pub fn resize_to(&mut self, dims: &[usize]) {
        if self.shape.dims() != dims {
            // reuse the shape's own storage: a warm arena resize must not
            // allocate, and the common case (same dims as last forward)
            // skips even the copy
            self.shape.copy_from(dims);
        }
        self.data.resize(self.shape.num_elements(), 0.0);
    }

    /// Returns a tensor with the same data reinterpreted under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the number of elements would change.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.num_elements(),
            self.len(),
            "reshape cannot change the number of elements"
        );
        Tensor {
            data: self.data.clone(),
            shape,
        }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires a rank-2 tensor");
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Extracts the `i`-th slice along the first axis, dropping that axis.
    ///
    /// For a `[N, C, H, W]` tensor this returns the `[C, H, W]` sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `i` is out of bounds.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert!(self.rank() >= 1, "index_axis0 requires rank >= 1");
        let n = self.dims()[0];
        assert!(i < n, "index {i} out of bounds for axis 0 (size {n})");
        let inner: usize = self.dims()[1..].iter().product();
        let data = self.data[i * inner..(i + 1) * inner].to_vec();
        Tensor {
            data,
            shape: Shape::new(&self.dims()[1..]),
        }
    }

    /// Stacks tensors of identical shape along a new leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or the shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "stack requires at least one tensor");
        let first = items[0].dims().to_vec();
        let mut data = Vec::with_capacity(items.len() * items[0].len());
        for t in items {
            assert_eq!(
                t.dims(),
                &first[..],
                "all stacked tensors must share a shape"
            );
            data.extend_from_slice(t.as_slice());
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(&first);
        Tensor::from_vec(data, &dims)
    }

    /// Concatenates rank-equal tensors along an existing axis.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree on any axis other than `axis`, or `items`
    /// is empty.
    pub fn concat(items: &[&Tensor], axis: usize) -> Tensor {
        assert!(!items.is_empty(), "concat requires at least one tensor");
        let rank = items[0].rank();
        assert!(
            axis < rank,
            "concat axis {axis} out of range for rank {rank}"
        );
        for t in items {
            assert_eq!(t.rank(), rank, "all concatenated tensors must share rank");
            for ax in 0..rank {
                if ax != axis {
                    assert_eq!(
                        t.dims()[ax],
                        items[0].dims()[ax],
                        "dimension {ax} must agree for concat"
                    );
                }
            }
        }
        let mut out_dims = items[0].dims().to_vec();
        out_dims[axis] = items.iter().map(|t| t.dims()[axis]).sum();
        let outer: usize = out_dims[..axis].iter().product();
        let inner: usize = out_dims[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(out_dims.iter().product());
        for o in 0..outer {
            for t in items {
                let ax_len = t.dims()[axis];
                let start = o * ax_len * inner;
                data.extend_from_slice(&t.as_slice()[start..start + ax_len * inner]);
            }
        }
        Tensor::from_vec(data, &out_dims)
    }

    // ---------------------------------------------------------------------
    // Element-wise operations
    // ---------------------------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        assert_eq!(
            self.dims(),
            other.dims(),
            "zip requires identical shapes ({:?} vs {:?})",
            self.dims(),
            other.dims()
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "add_assign requires identical shapes"
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Adds `scale * other` into `self` in place (AXPY).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "add_scaled requires identical shapes"
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Adds a scalar to every element, returning a new tensor.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Multiplies every element by a scalar in place.
    pub fn scale_inplace(&mut self, s: f32) {
        self.map_inplace(|x| x * s);
    }

    /// Clamps every element to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    // ---------------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (ties resolved to the first occurrence).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of an empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Sum of squares of all elements.
    pub fn sum_squares(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.sum_squares().sqrt()
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.data.iter().map(|&x| (x - mean).powi(2)).sum::<f32>() / self.data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 3]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 3]).sum(), 6.0);
        assert_eq!(Tensor::full(&[4], 2.5).sum(), 10.0);
    }

    #[test]
    fn eye_has_unit_trace_per_row() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 0.0);
        assert_eq!(t.sum(), 3.0);
    }

    #[test]
    fn try_from_vec_validates_length() {
        assert!(Tensor::try_from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::try_from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    #[should_panic(expected = "2 data elements do not fit shape [3]")]
    fn from_vec_panics_with_an_actionable_message() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn f32_tensor_reports_its_dtype_and_storage() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(t.dtype(), crate::DType::F32);
        assert_eq!(t.storage().as_slice(), t.as_slice());
    }

    #[test]
    fn quantized_tensors_share_the_generic_accessors() {
        let src = Tensor::from_vec(vec![1.0, -0.5, 0.25, 2.0, -1.0, 0.0], &[2, 3]);
        let h = crate::TensorF16::quantize(&src);
        assert_eq!(h.dims(), &[2, 3]);
        assert_eq!(h.rank(), 2);
        assert_eq!(h.len(), 6);
        assert!(!h.is_empty());
        assert_eq!(h.dtype(), crate::DType::F16);
        assert_eq!(h.to_f32().as_slice(), src.as_slice()); // exactly representable
        let q = crate::TensorI8::quantize(&src);
        assert_eq!(q.dtype(), crate::DType::I8);
        assert_eq!(q.len(), 6);
    }

    #[test]
    #[should_panic(expected = "storage holds 2 elements but shape [3] needs 3")]
    fn from_storage_validates_length() {
        let _ = Tensor::from_storage(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn transpose_swaps_axes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[0, 1]), 4.0);
        assert_eq!(tt.at(&[2, 0]), 3.0);
    }

    #[test]
    fn index_axis0_extracts_sample() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let s = t.index_axis0(1);
        assert_eq!(s.dims(), &[3, 4]);
        assert_eq!(s.at(&[0, 0]), 12.0);
    }

    #[test]
    fn stack_builds_batch() {
        let a = Tensor::full(&[2, 2], 1.0);
        let b = Tensor::full(&[2, 2], 2.0);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.dims(), &[2, 2, 2]);
        assert_eq!(s.index_axis0(1).sum(), 8.0);
    }

    #[test]
    fn concat_along_channel_axis() {
        let a = Tensor::full(&[1, 2, 2, 2], 1.0);
        let b = Tensor::full(&[1, 3, 2, 2], 2.0);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.dims(), &[1, 5, 2, 2]);
        assert_eq!(c.sum(), 1.0 * 8.0 + 2.0 * 12.0);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let b = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], &[4]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.sum_squares(), 14.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let t = Tensor::full(&[10], 3.0);
        assert!(t.variance().abs() < 1e-9);
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.max() < 0.5);
        assert!(t.min() >= -0.5);
    }

    #[test]
    fn rand_normal_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_normal(&[20000], 1.0, 2.0, &mut rng);
        assert!((t.mean() - 1.0).abs() < 0.1);
        assert!((t.variance().sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn clamp_bounds_values() {
        let t = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]);
        assert_eq!(t.clamp(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
    }
}
