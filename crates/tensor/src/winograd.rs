//! Winograd F(2×2, 3×3) convolution: the fast algorithm for the dense
//! 3×3 stride-1 convolutions that dominate the CNN model zoo.
//!
//! The classic transform trades multiplications for additions: each 2×2
//! output tile is computed from a 4×4 input tile with 16 multiplies instead
//! of 36 (a 2.25× multiply reduction), and — more importantly on this
//! machine — turns the per-tile work into one batched GEMM per Winograd
//! coordinate that runs on the PR 1 blocked-GEMM engine:
//!
//! 1. **weight transform** `U = G g Gᵀ` per (out-channel, in-channel) 3×3
//!    kernel, giving 16 matrices `U[ξ]: [cout × cin]`,
//! 2. **input transform** `V = Bᵀ d B` per 4×4 input tile, giving 16
//!    matrices `V[ξ]: [cin × tiles]`,
//! 3. **batched tile-GEMM** `M[ξ] = U[ξ] · V[ξ]` — 16 GEMMs of shape
//!    `cout × cin × tiles` covering the whole batch,
//! 4. **inverse transform** `y = Aᵀ m A` per output tile, with the fused
//!    per-channel scale/shift + activation epilogue applied in the same
//!    store pass (the conv→BN→activation fusion from PR 2 carries over).
//!
//! All scratch comes from one caller-owned `Vec<f32>` so steady-state
//! forwards allocate nothing; edge tiles are handled by zero-padding the
//! gathered 4×4 input windows and clipping the written 2×2 output windows.
//!
//! Numerics: the transforms introduce a small amount of cancellation, so the
//! result matches direct convolution to ~1e-3 relative error in f32 — the
//! tolerance the workspace's parity tests pin.

use crate::gemm::{gemm_batch_strided, Epilogue, WeightMat};

/// Tiles transformed together as SIMD lanes: the tile transforms are pure
/// lane-wise adds/subs in this SoA layout, so the compiler vectorises the
/// `WG_LANES`-wide inner loops (8 f32 = one AVX2 register, half an AVX-512
/// register). A scalar per-tile transform measured ~6× slower end-to-end.
const WG_LANES: usize = 8;

/// Computes `Bᵀ d B` (the F(2×2, 3×3) input transform) for one tile whose
/// four input rows are already loaded as 4-wide vectors, writing the 16
/// results into lane `l` of the SoA block. The row pass (`Bᵀ d`) runs as
/// 4-wide vector adds on the loaded rows; only the column pass (`· B`)
/// needs horizontal (per-element) arithmetic.
///
/// `Bᵀ = [[1, 0, -1, 0], [0, 1, 1, 0], [0, -1, 1, 0], [0, 1, 0, -1]]`.
#[inline]
fn input_transform_rows(rows: &[[f32; 4]; 4], out: &mut [[f32; WG_LANES]; 16], l: usize) {
    let [r0, r1, r2, r3] = rows;
    let mut t = [[0.0f32; 4]; 4];
    for c in 0..4 {
        t[0][c] = r0[c] - r2[c];
        t[1][c] = r1[c] + r2[c];
        t[2][c] = r2[c] - r1[c];
        t[3][c] = r1[c] - r3[c];
    }
    for (i, ti) in t.iter().enumerate() {
        out[4 * i][l] = ti[0] - ti[2];
        out[4 * i + 1][l] = ti[1] + ti[2];
        out[4 * i + 2][l] = ti[2] - ti[1];
        out[4 * i + 3][l] = ti[1] - ti[3];
    }
}

/// Applies `G g Gᵀ` to a 3×3 kernel (the F(2×2, 3×3) weight transform),
/// writing the 4×4 result.
///
/// `G = [[1, 0, 0], [1/2, 1/2, 1/2], [1/2, -1/2, 1/2], [0, 0, 1]]`.
#[inline]
fn weight_transform(g: &[f32], u: &mut [f32; 16]) {
    debug_assert!(g.len() >= 9);
    // t = G g : 4×3
    let mut t = [0.0f32; 12];
    for j in 0..3 {
        let (g0, g1, g2) = (g[j], g[3 + j], g[6 + j]);
        t[j] = g0;
        t[3 + j] = 0.5 * (g0 + g1 + g2);
        t[6 + j] = 0.5 * (g0 - g1 + g2);
        t[9 + j] = g2;
    }
    // u = t Gᵀ : 4×4
    for i in 0..4 {
        let (t0, t1, t2) = (t[3 * i], t[3 * i + 1], t[3 * i + 2]);
        u[4 * i] = t0;
        u[4 * i + 1] = 0.5 * (t0 + t1 + t2);
        u[4 * i + 2] = 0.5 * (t0 - t1 + t2);
        u[4 * i + 3] = t2;
    }
}

/// Applies `Aᵀ m A` (the F(2×2, 3×3) output transform) to `WG_LANES` tiles
/// at once, writing the four output-tile values into `y[pos][lane]`
/// (`pos` = row-major 2×2 position).
///
/// `Aᵀ = [[1, 1, 1, 0], [0, 1, -1, -1]]`.
#[inline]
fn output_transform_soa(m: &[[f32; WG_LANES]; 16], y: &mut [[f32; WG_LANES]; 4]) {
    // t = Aᵀ m : 2×4
    let mut t = [[0.0f32; WG_LANES]; 8];
    for j in 0..4 {
        for l in 0..WG_LANES {
            let (m0, m1, m2, m3) = (m[j][l], m[4 + j][l], m[8 + j][l], m[12 + j][l]);
            t[j][l] = m0 + m1 + m2;
            t[4 + j][l] = m1 - m2 - m3;
        }
    }
    // y = t A : 2×2
    for l in 0..WG_LANES {
        y[0][l] = t[0][l] + t[1][l] + t[2][l];
        y[1][l] = t[1][l] - t[2][l] - t[3][l];
        y[2][l] = t[4][l] + t[5][l] + t[6][l];
        y[3][l] = t[5][l] - t[6][l] - t[7][l];
    }
}

/// Tiles per processing chunk. The transform slabs for one chunk
/// (`16 * cin * TILE_CHUNK` inputs + `16 * cout * TILE_CHUNK` products)
/// must stay cache-resident: the Winograd scatter/gather strides by a whole
/// `[channels × chunk]` plane per coordinate, so an L2-sized chunk is the
/// difference between streaming and thrashing (a whole-batch slab measured
/// ~3× slower than im2col at 32 channels; chunked it wins).
const TILE_CHUNK: usize = 96;

/// Scratch sizes for [`winograd_conv3x3`]: `(total, u_len, v_len)` where the
/// caller-provided buffer is carved into `U | V-chunk | M-chunk` slabs.
fn scratch_layout(cin: usize, cout: usize) -> (usize, usize, usize) {
    let u = 16 * cout * cin;
    let v = 16 * cin * TILE_CHUNK;
    let m = 16 * cout * TILE_CHUNK;
    (u + v + m, u, v)
}

/// Dense (groups == 1) 3×3 stride-1 convolution over a `[n, cin, h, w]`
/// input via Winograd F(2×2, 3×3), writing a `[n, cout, oh, ow]` output with
/// `oh = h + 2*pad - 2`, `ow = w + 2*pad - 2`.
///
/// * `weights` is the usual `[cout, cin, 3, 3]` layout.
/// * With `ep == Some(e)` every output element becomes
///   `e.act(e.scale[oc] * conv + e.shift[oc])`, applied in the inverse
///   transform's store pass; `bias` is ignored in this mode (callers fold it
///   into `shift`, mirroring [`crate::gemm_epilogue`]).
/// * With `ep == None` the plain convolution plus `bias[oc]` is stored.
/// * `scratch` is a caller-owned buffer resized (never shrunk) to hold the
///   transform slabs, so steady-state calls allocate nothing.
///
/// # Panics
///
/// Panics if a slice is shorter than its shape contract, or the output has
/// non-positive spatial extent.
#[allow(clippy::too_many_arguments)]
pub fn winograd_conv3x3(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    ep: Option<Epilogue<'_>>,
    out: &mut [f32],
    n: usize,
    cin: usize,
    cout: usize,
    h: usize,
    w: usize,
    pad: usize,
    scratch: &mut Vec<f32>,
) {
    winograd_conv3x3_q(
        input,
        WeightMat::F32(weights),
        bias,
        ep,
        out,
        n,
        cin,
        cout,
        h,
        w,
        pad,
        scratch,
    );
}

/// [`winograd_conv3x3`] with a runtime-dtype weight operand: f16/i8 weights
/// are widened to `f32` inside the weight transform (step 1), which reads
/// each of the `cout * cin * 9` weights exactly once per call — the tile
/// pipeline (steps 2–4) is unchanged and runs entirely in `f32`.
#[allow(clippy::too_many_arguments)]
pub fn winograd_conv3x3_q(
    input: &[f32],
    weights: WeightMat<'_>,
    bias: &[f32],
    ep: Option<Epilogue<'_>>,
    out: &mut [f32],
    n: usize,
    cin: usize,
    cout: usize,
    h: usize,
    w: usize,
    pad: usize,
    scratch: &mut Vec<f32>,
) {
    assert!(
        h + 2 * pad >= 3 && w + 2 * pad >= 3,
        "input too small for a 3x3 kernel"
    );
    let oh = h + 2 * pad - 2;
    let ow = w + 2 * pad - 2;
    assert!(input.len() >= n * cin * h * w, "winograd input too short");
    assert!(
        weights.len() >= cout * cin * 9,
        "winograd weights too short"
    );
    assert!(out.len() >= n * cout * oh * ow, "winograd output too short");
    if let Some(e) = ep {
        assert!(
            e.scale.len() >= cout && e.shift.len() >= cout,
            "winograd epilogue needs one scale/shift entry per output channel"
        );
    } else {
        assert!(bias.len() >= cout, "winograd bias too short");
    }
    assert!(
        h < (1 << 30) && w < (1 << 30),
        "winograd input extents exceed the supported range"
    );
    if n == 0 || cout == 0 {
        return;
    }

    let (total, u_len, v_len) = scratch_layout(cin, cout);
    if scratch.len() < total {
        scratch.resize(total, 0.0);
    }
    let (u_slab, rest) = scratch.split_at_mut(u_len);
    let (v_slab, m_slab) = rest.split_at_mut(v_len);

    // 1. weight transform: U[xi][oc * cin + ic], once for the whole batch
    // (quantized weights widen to f32 in the staging read — each weight is
    // touched exactly once here, so the conversion cost is O(cout*cin*9))
    let mut g = [0.0f32; 9];
    let mut u_tile = [0.0f32; 16];
    for oc in 0..cout {
        for ic in 0..cin {
            let base = (oc * cin + ic) * 9;
            for (j, gj) in g.iter_mut().enumerate() {
                *gj = weights.at(base + j);
            }
            weight_transform(&g, &mut u_tile);
            for (xi, &uv) in u_tile.iter().enumerate() {
                u_slab[(xi * cout + oc) * cin + ic] = uv;
            }
        }
    }

    // 2.–4. run the tile pipeline, fanning sample bands across the shared
    // pool like the other conv backends (each band stages its own V/M
    // slabs; U is shared read-only). Bands write disjoint contiguous output
    // ranges, so no synchronisation is needed.
    let bands = hs_parallel::num_threads().min(n);
    if bands <= 1 || hs_parallel::inside_pool() {
        winograd_samples(
            input, u_slab, bias, ep, out, n, cin, cout, h, w, pad, v_slab, m_slab,
        );
    } else {
        let band_len = n.div_ceil(bands);
        let in_chw = cin * h * w;
        let out_chw = cout * oh * ow;
        let u_slab = &*u_slab;
        hs_parallel::scope(|s| {
            for (band, out_band) in out[..n * out_chw]
                .chunks_mut(band_len * out_chw)
                .enumerate()
            {
                s.spawn(move || {
                    let n0 = band * band_len;
                    let samples = out_band.len() / out_chw;
                    let mut vm = vec![0.0f32; total - u_len];
                    let (v, m) = vm.split_at_mut(v_len);
                    winograd_samples(
                        &input[n0 * in_chw..(n0 + samples) * in_chw],
                        u_slab,
                        bias,
                        ep,
                        out_band,
                        samples,
                        cin,
                        cout,
                        h,
                        w,
                        pad,
                        v,
                        m,
                    );
                });
            }
        });
    }
}

/// The Winograd tile pipeline (input transform → tile-GEMMs → inverse
/// transform) over a contiguous range of samples, with pre-transformed
/// weights in `u_slab` and caller-staged `v_slab`/`m_slab` chunk buffers.
///
/// Processing walks chunks of `TILE_CHUNK` consecutive tiles (tile index
/// `p = ni * tiles + ti * tw + tj`, so a chunk may span samples):
/// transform inputs into the chunk's V slab, run the 16 tile-GEMMs, and
/// inverse-transform straight out — everything after the input gather
/// stays inside the two cache-resident slabs.
///
/// Tile geometry for each chunk is resolved once into a stack table and
/// reused by every channel: the coordinate div/mods would otherwise run
/// `channels × tiles` times and dominate the transform cost.
#[allow(clippy::too_many_arguments)]
fn winograd_samples(
    input: &[f32],
    u_slab: &[f32],
    bias: &[f32],
    ep: Option<Epilogue<'_>>,
    out: &mut [f32],
    n: usize,
    cin: usize,
    cout: usize,
    h: usize,
    w: usize,
    pad: usize,
    v_slab: &mut [f32],
    m_slab: &mut [f32],
) {
    let oh = h + 2 * pad - 2;
    let ow = w + 2 * pad - 2;
    let th = oh.div_ceil(2);
    let tw = ow.div_ceil(2);
    let tiles = th * tw;
    let p_total = n * tiles;

    #[derive(Clone, Copy, Default)]
    struct TileGeom {
        /// Sample index.
        ni: u32,
        /// Top-left input coordinates of the 4×4 window (may be negative
        /// into the padding fringe).
        i0: i32,
        j0: i32,
        /// Whether the window lies fully inside the image.
        interior: bool,
    }
    let mut geom = [TileGeom::default(); TILE_CHUNK];
    let mut dg = [[0.0f32; WG_LANES]; 16];
    let mut mg = [[0.0f32; WG_LANES]; 16];
    let mut yg = [[0.0f32; WG_LANES]; 4];
    // rolling (ni, ti, tj) counters across chunks — no divisions anywhere
    let (mut ni, mut ti, mut tj) = (0usize, 0usize, 0usize);
    let mut p0 = 0;
    while p0 < p_total {
        let chunk = TILE_CHUNK.min(p_total - p0);
        for g in geom.iter_mut().take(chunk) {
            let i0 = (2 * ti) as isize - pad as isize;
            let j0 = (2 * tj) as isize - pad as isize;
            *g = TileGeom {
                ni: ni as u32,
                i0: i0 as i32,
                j0: j0 as i32,
                interior: i0 >= 0 && j0 >= 0 && i0 + 4 <= h as isize && j0 + 4 <= w as isize,
            };
            tj += 1;
            if tj == tw {
                tj = 0;
                ti += 1;
                if ti == th {
                    ti = 0;
                    ni += 1;
                }
            }
        }

        // input transform, WG_LANES tiles per step: per tile, load the four
        // 4-wide window rows and run the fused row+column transform straight
        // into the SoA block, then one contiguous WG_LANES-wide store per
        // Winograd coordinate
        for ic in 0..cin {
            let mut dp = 0;
            while dp < chunk {
                let l_len = WG_LANES.min(chunk - dp);
                for (l, g) in geom[dp..dp + l_len].iter().enumerate() {
                    let chan_base = (g.ni as usize * cin + ic) * h * w;
                    let mut rows = [[0.0f32; 4]; 4];
                    if g.interior {
                        let base = chan_base + g.i0 as usize * w + g.j0 as usize;
                        for (r, row) in rows.iter_mut().enumerate() {
                            row.copy_from_slice(&input[base + r * w..base + r * w + 4]);
                        }
                    } else {
                        for (r, row) in rows.iter_mut().enumerate() {
                            let ii = g.i0 as isize + r as isize;
                            if ii < 0 || ii >= h as isize {
                                continue; // row stays zero
                            }
                            for (c, v) in row.iter_mut().enumerate() {
                                let jj = g.j0 as isize + c as isize;
                                if jj >= 0 && jj < w as isize {
                                    *v = input[chan_base + ii as usize * w + jj as usize];
                                }
                            }
                        }
                    }
                    input_transform_rows(&rows, &mut dg, l);
                }
                // unused lanes keep stale values; they are never stored
                for (xi, lanes) in dg.iter().enumerate() {
                    let off = (xi * cin + ic) * chunk + dp;
                    v_slab[off..off + l_len].copy_from_slice(&lanes[..l_len]);
                }
                dp += l_len;
            }
        }

        // batched tile-GEMM per Winograd coordinate: M[xi] = U[xi] · V[xi],
        // one strided-batch call over all 16 coordinates (per-ξ A panels
        // shared across the whole batch of tiles) instead of 16 dispatches
        gemm_batch_strided(
            u_slab,
            v_slab,
            m_slab,
            cout,
            cin,
            chunk,
            16,
            cout * cin,
            cin * chunk,
            cout * chunk,
            None,
        );

        // inverse transform + epilogue/bias, WG_LANES tiles per step: one
        // contiguous load per coordinate, vector transform, scalar
        // edge-clipped scatter into the output
        for oc in 0..cout {
            let b = bias.get(oc).copied().unwrap_or(0.0);
            let mut dp = 0;
            while dp < chunk {
                let l_len = WG_LANES.min(chunk - dp);
                for (xi, lanes) in mg.iter_mut().enumerate() {
                    let off = (xi * cout + oc) * chunk + dp;
                    lanes[..l_len].copy_from_slice(&m_slab[off..off + l_len]);
                }
                output_transform_soa(&mg, &mut yg);
                for (l, g) in geom[dp..dp + l_len].iter().enumerate() {
                    let oi = (g.i0 as isize + pad as isize) as usize;
                    let oj = (g.j0 as isize + pad as isize) as usize;
                    let out_base = (g.ni as usize * cout + oc) * oh * ow;
                    let rows = 2.min(oh - oi);
                    let cols = 2.min(ow - oj);
                    for r in 0..rows {
                        for c in 0..cols {
                            let v = yg[2 * r + c][l];
                            out[out_base + (oi + r) * ow + oj + c] = match ep {
                                Some(e) => e.apply_scalar(oc, v),
                                None => v + b,
                            };
                        }
                    }
                }
                dp += l_len;
            }
        }

        p0 += chunk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::EpilogueAct;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Direct scalar 3×3 stride-1 convolution reference.
    #[allow(clippy::too_many_arguments)]
    fn conv3x3_reference(
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        n: usize,
        cin: usize,
        cout: usize,
        h: usize,
        w: usize,
        pad: usize,
    ) -> Vec<f32> {
        let oh = h + 2 * pad - 2;
        let ow = w + 2 * pad - 2;
        let mut out = vec![0.0f32; n * cout * oh * ow];
        for ni in 0..n {
            for oc in 0..cout {
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = bias[oc];
                        for ic in 0..cin {
                            for ki in 0..3 {
                                for kj in 0..3 {
                                    let ii = oi as isize + ki as isize - pad as isize;
                                    let jj = oj as isize + kj as isize - pad as isize;
                                    if ii >= 0 && ii < h as isize && jj >= 0 && jj < w as isize {
                                        acc += weights[((oc * cin + ic) * 3 + ki) * 3 + kj]
                                            * input[(ni * cin + ic) * h * w
                                                + ii as usize * w
                                                + jj as usize];
                                    }
                                }
                            }
                        }
                        out[((ni * cout + oc) * oh + oi) * ow + oj] = acc;
                    }
                }
            }
        }
        out
    }

    fn rand_vec(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn matches_direct_convolution_across_shapes() {
        let mut rng = StdRng::seed_from_u64(7);
        // (n, cin, cout, h, w, pad): odd/even extents, pad 0/1, single pixels
        for (n, cin, cout, h, w, pad) in [
            (1usize, 1usize, 1usize, 4usize, 4usize, 0usize),
            (2, 3, 8, 8, 8, 1),
            (1, 4, 6, 7, 9, 1),
            (3, 2, 5, 5, 6, 0),
            (1, 8, 8, 3, 3, 1),
            (2, 1, 2, 3, 3, 0), // single output pixel
        ] {
            let input = rand_vec(&mut rng, n * cin * h * w);
            let weights = rand_vec(&mut rng, cout * cin * 9);
            let bias = rand_vec(&mut rng, cout);
            let expect = conv3x3_reference(&input, &weights, &bias, n, cin, cout, h, w, pad);
            let mut got = vec![0.0f32; expect.len()];
            let mut scratch = Vec::new();
            winograd_conv3x3(
                &input,
                &weights,
                &bias,
                None,
                &mut got,
                n,
                cin,
                cout,
                h,
                w,
                pad,
                &mut scratch,
            );
            for (i, (e, g)) in expect.iter().zip(got.iter()).enumerate() {
                assert!(
                    (e - g).abs() <= 1e-3 * e.abs().max(1.0),
                    "n={n} cin={cin} cout={cout} {h}x{w} pad={pad}: element {i}: {e} vs {g}"
                );
            }
        }
    }

    #[test]
    fn quantized_weights_match_f32_within_dtype_tolerance() {
        let mut rng = StdRng::seed_from_u64(9);
        let (n, cin, cout, h, w, pad) = (2usize, 4usize, 6usize, 8usize, 8usize, 1usize);
        let input = rand_vec(&mut rng, n * cin * h * w);
        let weights = rand_vec(&mut rng, cout * cin * 9);
        let bias = rand_vec(&mut rng, cout);
        let mut expect = vec![0.0f32; n * cout * h * w];
        let mut scratch = Vec::new();
        winograd_conv3x3(
            &input,
            &weights,
            &bias,
            None,
            &mut expect,
            n,
            cin,
            cout,
            h,
            w,
            pad,
            &mut scratch,
        );
        // f16 weights: the transform widens them; f16 rounding (~2^-11 rel)
        // plus the usual Winograd cancellation bounds the drift
        let f16: Vec<u16> = weights.iter().map(|&v| crate::f32_to_f16_bits(v)).collect();
        let mut got = vec![0.0f32; expect.len()];
        winograd_conv3x3_q(
            &input,
            WeightMat::F16(&f16),
            &bias,
            None,
            &mut got,
            n,
            cin,
            cout,
            h,
            w,
            pad,
            &mut scratch,
        );
        for (i, (e, g)) in expect.iter().zip(got.iter()).enumerate() {
            assert!(
                (e - g).abs() <= 5e-3 * e.abs().max(1.0),
                "f16 element {i}: {e} vs {g}"
            );
        }
        // and the f32 WeightMat route is bit-identical to the plain entry
        let mut same = vec![0.0f32; expect.len()];
        winograd_conv3x3_q(
            &input,
            WeightMat::F32(&weights),
            &bias,
            None,
            &mut same,
            n,
            cin,
            cout,
            h,
            w,
            pad,
            &mut scratch,
        );
        assert_eq!(expect, same);
    }

    #[test]
    fn epilogue_matches_scaled_shifted_activated_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        let (n, cin, cout, h, w, pad) = (2usize, 3usize, 5usize, 6usize, 7usize, 1usize);
        let input = rand_vec(&mut rng, n * cin * h * w);
        let weights = rand_vec(&mut rng, cout * cin * 9);
        let zero_bias = vec![0.0f32; cout];
        let scale = rand_vec(&mut rng, cout);
        let shift = rand_vec(&mut rng, cout);
        let plain = conv3x3_reference(&input, &weights, &zero_bias, n, cin, cout, h, w, pad);
        for act in [
            EpilogueAct::None,
            EpilogueAct::Relu,
            EpilogueAct::LeakyRelu(0.1),
            EpilogueAct::Relu6,
        ] {
            let ep = Epilogue {
                scale: &scale,
                shift: &shift,
                act,
            };
            let oh = h + 2 * pad - 2;
            let ow = w + 2 * pad - 2;
            let mut got = vec![0.0f32; n * cout * oh * ow];
            let mut scratch = Vec::new();
            winograd_conv3x3(
                &input,
                &weights,
                &zero_bias,
                Some(ep),
                &mut got,
                n,
                cin,
                cout,
                h,
                w,
                pad,
                &mut scratch,
            );
            for (i, (p, g)) in plain.iter().zip(got.iter()).enumerate() {
                let oc = (i / (oh * ow)) % cout;
                let e = act.apply(p * scale[oc] + shift[oc]);
                assert!(
                    (e - g).abs() <= 1e-3 * e.abs().max(1.0),
                    "{act:?}: element {i}: {e} vs {g}"
                );
            }
        }
    }

    #[test]
    fn banded_path_matches_serial_path() {
        // raise the parallelism target so the sample-band fan-out code runs
        // (inline on a single-core host, on the pool elsewhere) and must
        // reproduce the serial result exactly
        let mut rng = StdRng::seed_from_u64(10);
        let (n, cin, cout, h, w, pad) = (5usize, 3usize, 4usize, 7usize, 6usize, 1usize);
        let input = rand_vec(&mut rng, n * cin * h * w);
        let weights = rand_vec(&mut rng, cout * cin * 9);
        let bias = rand_vec(&mut rng, cout);
        let mut scratch = Vec::new();
        let mut serial = vec![0.0f32; n * cout * h * w];
        winograd_conv3x3(
            &input,
            &weights,
            &bias,
            None,
            &mut serial,
            n,
            cin,
            cout,
            h,
            w,
            pad,
            &mut scratch,
        );
        hs_parallel::set_num_threads(Some(3));
        let mut banded = vec![0.0f32; n * cout * h * w];
        winograd_conv3x3(
            &input,
            &weights,
            &bias,
            None,
            &mut banded,
            n,
            cin,
            cout,
            h,
            w,
            pad,
            &mut scratch,
        );
        hs_parallel::set_num_threads(None);
        assert_eq!(serial, banded, "banded/serial divergence");
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let mut rng = StdRng::seed_from_u64(9);
        let (n, cin, cout, h, w, pad) = (1usize, 2usize, 3usize, 6usize, 6usize, 1usize);
        let input = rand_vec(&mut rng, n * cin * h * w);
        let weights = rand_vec(&mut rng, cout * cin * 9);
        let bias = rand_vec(&mut rng, cout);
        let mut scratch = Vec::new();
        let mut out1 = vec![0.0f32; n * cout * h * w];
        winograd_conv3x3(
            &input,
            &weights,
            &bias,
            None,
            &mut out1,
            n,
            cin,
            cout,
            h,
            w,
            pad,
            &mut scratch,
        );
        let cap = scratch.capacity();
        let mut out2 = vec![0.0f32; n * cout * h * w];
        winograd_conv3x3(
            &input,
            &weights,
            &bias,
            None,
            &mut out2,
            n,
            cin,
            cout,
            h,
            w,
            pad,
            &mut scratch,
        );
        assert_eq!(out1, out2, "repeated calls must be deterministic");
        assert_eq!(
            scratch.capacity(),
            cap,
            "second call must not regrow the scratch"
        );
    }
}
