//! Reproduces a miniature of the paper's Table 2: train one model per device
//! type, test it on every other device type, and print the degradation
//! matrix.
//!
//! Run with `cargo run --release --example cross_device_matrix`.

use hs_data::{build_device_datasets, Imagenet12Config};
use hs_device::paper_devices;
use hs_fl::evaluate_accuracy;
use hs_metrics::DegradationMatrix;
use hs_nn::models::{build_vision_model, ModelKind, VisionConfig};
use hs_nn::{CrossEntropyLoss, Sgd};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let fleet = paper_devices();
    let cfg = Imagenet12Config {
        num_classes: 6,
        image_size: 16,
        scene_size: 24,
        train_per_class: 4,
        test_per_class: 2,
        ..Imagenet12Config::default()
    };
    let datasets = build_device_datasets(&fleet, cfg, 7);
    let vision = VisionConfig::new(3, cfg.num_classes, cfg.image_size);

    let names: Vec<String> = datasets.iter().map(|d| d.device.clone()).collect();
    let mut accuracy = Vec::new();
    for (i, train_ds) in datasets.iter().enumerate() {
        // centralized training on this device's data only
        let mut rng = StdRng::seed_from_u64(i as u64);
        let mut net = build_vision_model(ModelKind::SimpleCnn, vision, &mut rng);
        let mut opt = Sgd::new(0.05);
        for _epoch in 0..15 {
            let mut order: Vec<usize> = (0..train_ds.train.len()).collect();
            order.shuffle(&mut rng);
            for batch in order.chunks(8) {
                let (x, target) = train_ds.train.batch(batch);
                net.forward_backward(&x, &target, &CrossEntropyLoss);
                opt.step(&mut net);
            }
        }
        let row: Vec<f32> = datasets
            .iter()
            .map(|test_ds| evaluate_accuracy(&mut net, &test_ds.test))
            .collect();
        println!(
            "trained on {:<8} own-device accuracy {:.1}%",
            train_ds.device,
            row[i] * 100.0
        );
        accuracy.push(row);
    }

    let matrix = DegradationMatrix::new(names, accuracy);
    println!("\n{}", matrix.to_table());
    println!(
        "Overall mean cross-device degradation: {:.1}%",
        matrix.overall_mean_degradation() * 100.0
    );
}
