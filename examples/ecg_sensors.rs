//! The non-vision experiment (paper Sec. 6.6): heart-rate estimation from
//! ECG windows captured by four heterogeneous sensor types, comparing FedAvg
//! against HeteroSwitch equipped with the random Gaussian filter.
//!
//! Run with `cargo run --release --example ecg_sensors`.

use heteroswitch::{HeteroSwitchConfig, HeteroSwitchTrainer, Policy};
use hs_data::{build_ecg_datasets, split_evenly, EcgConfig};
use hs_fl::{
    evaluate_heart_rate, AggregationMethod, ClientData, ClientTrainer, FedAvgTrainer, FlConfig,
    FlSimulation, LossKind, ModelFactory,
};
use hs_metrics::heart_rate_deviation;
use hs_nn::models::ecg_net;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = EcgConfig {
        train_per_sensor: 24,
        test_per_sensor: 10,
        ..EcgConfig::default()
    };
    let datasets = build_ecg_datasets(cfg, 5);
    println!(
        "Sensor types: {:?}",
        datasets
            .iter()
            .map(|d| d.device.clone())
            .collect::<Vec<_>>()
    );

    // two clients per sensor type
    let mut clients = Vec::new();
    for (d, ds) in datasets.iter().enumerate() {
        for (i, shard) in split_evenly(&ds.train, 2, d as u64).into_iter().enumerate() {
            clients.push(ClientData {
                id: d * 2 + i,
                device: ds.device.clone(),
                data: shard,
            });
        }
    }
    let tests: Vec<(String, _)> = datasets
        .iter()
        .map(|d| (d.device.clone(), d.test.clone()))
        .collect();

    let mut fl = FlConfig::quick();
    fl.num_clients = clients.len();
    fl.clients_per_round = 4;
    fl.rounds = 20;
    fl.batch_size = 8;

    let window = cfg.window;
    let factory = || -> ModelFactory {
        Box::new(move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            ecg_net(window, &mut rng)
        })
    };
    let methods: Vec<(&str, Box<dyn ClientTrainer>)> = vec![
        ("FedAvg", Box::new(FedAvgTrainer::new(LossKind::Mse))),
        (
            "HeteroSwitch + Gaussian filter",
            Box::new(HeteroSwitchTrainer::new(
                HeteroSwitchConfig::ecg(),
                LossKind::Mse,
                Policy::Selective,
            )),
        ),
    ];

    for (name, trainer) in methods {
        let mut sim = FlSimulation::new(
            fl,
            clients.clone(),
            factory(),
            trainer,
            AggregationMethod::FedAvg,
        );
        sim.run();
        let mut net = sim.global_model();
        println!("\n{name}:");
        let mut deviations = Vec::new();
        for (sensor, test) in &tests {
            let (pred, actual) = evaluate_heart_rate(&mut net, test, 200.0);
            let deviation = heart_rate_deviation(&pred, &actual);
            println!("  {sensor:<17} heart-rate deviation {deviation:.1}%");
            deviations.push(deviation);
        }
        println!(
            "  mean deviation across sensor types: {:.1}%",
            deviations.iter().sum::<f32>() / deviations.len() as f32
        );
    }
}
