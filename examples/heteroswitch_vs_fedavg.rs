//! Head-to-head comparison of FedAvg, the always-on ablations and full
//! HeteroSwitch on the synthetic-CIFAR heterogeneity injection (paper Fig. 8
//! style), printing per-device accuracy, variance and worst-case accuracy.
//!
//! Run with `cargo run --release --example heteroswitch_vs_fedavg`.

use heteroswitch::{HeteroSwitchConfig, HeteroSwitchTrainer, Policy};
use hs_data::{build_jitter_datasets, split_evenly, CifarSynthConfig};
use hs_fl::{
    AggregationMethod, ClientData, ClientTrainer, FedAvgTrainer, FlConfig, FlSimulation, LossKind,
    ModelFactory,
};
use hs_metrics::{mean, population_variance, worst_case};
use hs_nn::models::{build_vision_model, ModelKind, VisionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = CifarSynthConfig {
        num_classes: 6,
        image_size: 16,
        num_device_types: 6,
        train_per_class: 4,
        test_per_class: 2,
    };
    let datasets = build_jitter_datasets(cfg, 11);

    // two clients per synthetic device type
    let mut clients = Vec::new();
    for (d, ds) in datasets.iter().enumerate() {
        for (i, shard) in split_evenly(&ds.train, 2, d as u64).into_iter().enumerate() {
            clients.push(ClientData {
                id: d * 2 + i,
                device: ds.device.clone(),
                data: shard,
            });
        }
    }
    let tests: Vec<(String, _)> = datasets
        .iter()
        .map(|d| (d.device.clone(), d.test.clone()))
        .collect();

    let mut fl = FlConfig::quick();
    fl.num_clients = clients.len();
    fl.clients_per_round = 4;
    fl.rounds = 10;
    fl.batch_size = 8;

    let vision = VisionConfig::new(3, cfg.num_classes, cfg.image_size);
    let factory = || -> ModelFactory {
        Box::new(move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            build_vision_model(ModelKind::SimpleCnn, vision, &mut rng)
        })
    };
    let methods: Vec<(&str, Box<dyn ClientTrainer>)> = vec![
        (
            "FedAvg",
            Box::new(FedAvgTrainer::new(LossKind::CrossEntropy)),
        ),
        (
            "ISP Transformation",
            Box::new(HeteroSwitchTrainer::new(
                HeteroSwitchConfig::default(),
                LossKind::CrossEntropy,
                Policy::AlwaysTransform,
            )),
        ),
        (
            "ISP Transformation + SWAD",
            Box::new(HeteroSwitchTrainer::new(
                HeteroSwitchConfig::default(),
                LossKind::CrossEntropy,
                Policy::AlwaysTransformAndSwad,
            )),
        ),
        (
            "HeteroSwitch",
            Box::new(HeteroSwitchTrainer::new(
                HeteroSwitchConfig::default(),
                LossKind::CrossEntropy,
                Policy::Selective,
            )),
        ),
    ];

    println!(
        "{:<26} {:>9} {:>11} {:>9}",
        "Method", "average", "worst-case", "variance"
    );
    for (name, trainer) in methods {
        let mut sim = FlSimulation::new(
            fl,
            clients.clone(),
            factory(),
            trainer,
            AggregationMethod::FedAvg,
        );
        sim.run();
        let accs: Vec<f32> = sim
            .evaluate_per_device(&tests)
            .iter()
            .map(|g| g.accuracy * 100.0)
            .collect();
        println!(
            "{:<26} {:>8.1}% {:>10.1}% {:>9.1}",
            name,
            mean(&accs),
            worst_case(&accs),
            population_variance(&accs)
        );
    }
}
