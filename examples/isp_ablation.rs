//! Shows how each ISP stage changes the rendition of the same RAW capture —
//! the image-level mechanism behind the paper's Fig. 3 ablation.
//!
//! Run with `cargo run --release --example isp_ablation`.

use hs_data::SceneGenerator;
use hs_device::{paper_devices, DeviceId};
use hs_isp::{IspConfig, IspStage};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Capture one scene with the Galaxy S9's sensor.
    let generator = SceneGenerator::new(12, 48);
    let mut rng = StdRng::seed_from_u64(0);
    let scene = generator.generate(4, &mut rng);
    let fleet = paper_devices();
    let sensor = &fleet[DeviceId::S9.index()].sensor;
    let raw = sensor.capture(&scene, &mut rng);

    // Baseline rendition (paper Table 3 "Baseline" column).
    let baseline_cfg = IspConfig::baseline();
    let baseline = baseline_cfg.process(&raw);
    println!(
        "Baseline ISP: {}x{} RGB, mean luminance {:.3}",
        baseline.width,
        baseline.height,
        (baseline.channel_mean(0) + baseline.channel_mean(1) + baseline.channel_mean(2)) / 3.0
    );

    // Ablate each stage (option 1 = omit, option 2 = alternative algorithm)
    // and report how far the rendition moves from the baseline.
    println!("\nStage ablation (image-level distance from the baseline rendition):");
    println!("{:<14} {:>10} {:>10}", "Stage", "option 1", "option 2");
    for stage in IspStage::all() {
        let d1 = baseline.mean_abs_diff(&baseline_cfg.with_stage_option1(stage).process(&raw));
        let d2 = baseline.mean_abs_diff(&baseline_cfg.with_stage_option2(stage).process(&raw));
        println!("{:<14} {:>10.4} {:>10.4}", stage.as_str(), d1, d2);
    }
    println!("\nThe colour (white balance) and tone stages move the image the most — the same two stages the paper identifies as the dominant sources of ISP-induced heterogeneity.");
}
