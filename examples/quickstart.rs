//! Quickstart: render one scene through two heterogeneous devices, build a
//! small federated population over the full nine-device fleet, and compare
//! FedAvg against HeteroSwitch.
//!
//! Run with `cargo run --release --example quickstart`.

use heteroswitch::{HeteroSwitchConfig, HeteroSwitchTrainer, Policy};
use hs_data::{build_device_datasets, split_evenly, Imagenet12Config};
use hs_device::paper_devices;
use hs_fl::{
    AggregationMethod, ClientData, FedAvgTrainer, FlConfig, FlSimulation, LossKind, ModelFactory,
};
use hs_metrics::{population_variance, worst_case};
use hs_nn::models::{build_vision_model, ModelKind, VisionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The simulated device fleet (paper Table 1).
    let fleet = paper_devices();
    println!("Fleet: {} devices", fleet.len());
    for device in &fleet {
        println!(
            "  {:<8} vendor={:<8} tier={:<9} market share={:>4.0}%",
            device.name,
            device.vendor.as_str(),
            device.tier.as_str(),
            device.market_share * 100.0
        );
    }

    // 2. Per-device datasets: the same scenes, rendered by each device.
    let cfg = Imagenet12Config {
        num_classes: 6,
        image_size: 16,
        scene_size: 24,
        train_per_class: 4,
        test_per_class: 2,
        ..Imagenet12Config::default()
    };
    let datasets = build_device_datasets(&fleet, cfg, 42);
    println!(
        "\nBuilt {} per-device datasets ({} train / {} test samples each)",
        datasets.len(),
        datasets[0].train.len(),
        datasets[0].test.len()
    );

    // 3. A federated population: two clients per device type.
    let mut clients = Vec::new();
    for (d, ds) in datasets.iter().enumerate() {
        for (i, shard) in split_evenly(&ds.train, 2, d as u64).into_iter().enumerate() {
            clients.push(ClientData {
                id: d * 2 + i,
                device: ds.device.clone(),
                data: shard,
            });
        }
    }
    let tests: Vec<(String, _)> = datasets
        .iter()
        .map(|d| (d.device.clone(), d.test.clone()))
        .collect();

    let mut fl = FlConfig::quick();
    fl.num_clients = clients.len();
    fl.clients_per_round = 6;
    fl.rounds = 8;
    fl.batch_size = 8;

    let vision = VisionConfig::new(3, cfg.num_classes, cfg.image_size);
    let factory = || -> ModelFactory {
        Box::new(move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            build_vision_model(ModelKind::SimpleCnn, vision, &mut rng)
        })
    };

    // 4. FedAvg baseline vs HeteroSwitch.
    for (name, trainer) in [
        (
            "FedAvg",
            Box::new(FedAvgTrainer::new(LossKind::CrossEntropy)) as Box<dyn hs_fl::ClientTrainer>,
        ),
        (
            "HeteroSwitch",
            Box::new(HeteroSwitchTrainer::new(
                HeteroSwitchConfig::default(),
                LossKind::CrossEntropy,
                Policy::Selective,
            )),
        ),
    ] {
        let mut sim = FlSimulation::new(
            fl,
            clients.clone(),
            factory(),
            trainer,
            AggregationMethod::FedAvg,
        );
        sim.run();
        let groups = sim.evaluate_per_device(&tests);
        let accs: Vec<f32> = groups.iter().map(|g| g.accuracy * 100.0).collect();
        println!(
            "\n{name}: average {:.1}%  worst-case {:.1}%  variance {:.1}",
            accs.iter().sum::<f32>() / accs.len() as f32,
            worst_case(&accs),
            population_variance(&accs)
        );
        for g in &groups {
            println!("  {:<8} {:.1}%", g.group, g.accuracy * 100.0);
        }
    }
}
