//! Serving quickstart: train a global model with federated learning,
//! checkpoint it into a model registry, serve it with the dynamic
//! micro-batching server, and watch a mid-serving hot-swap.
//!
//! Run with `cargo run --release --example serve_quickstart`.

use hs_data::{Dataset, Labels};
use hs_fl::{AggregationMethod, ClientData, FedAvgTrainer, FlConfig, FlSimulation, LossKind};
use hs_nn::models::{build_vision_model, ModelKind, VisionConfig};
use hs_serve::{BatchPolicy, ModelRegistry, Server, ServerConfig};
use hs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const CLASSES: usize = 5;
const PX: usize = 16;

fn model_cfg() -> VisionConfig {
    VisionConfig::new(3, CLASSES, PX)
}

fn clients(n: usize, samples: usize) -> Vec<ClientData> {
    (0..n)
        .map(|id| {
            let mut rng = StdRng::seed_from_u64(id as u64 + 40);
            let x: Vec<Tensor> = (0..samples)
                .map(|i| {
                    // class-tinted random images: enough signal for a short
                    // demo run to visibly learn
                    let mut t = Tensor::rand_uniform(&[3, PX, PX], 0.0, 0.4, &mut rng);
                    let class = i % CLASSES;
                    for v in t.as_mut_slice().iter_mut().skip(class * 40).take(40) {
                        *v += 0.6;
                    }
                    t
                })
                .collect();
            ClientData {
                id,
                device: format!("dev-{}", id % 3),
                data: Dataset::new(
                    x,
                    Labels::Classes((0..samples).map(|i| i % CLASSES).collect()),
                ),
            }
        })
        .collect()
}

fn main() {
    // 1. A federated run that publishes its global model into the registry
    //    every 2 rounds (the `checkpoint_every` hook).
    let registry = Arc::new(ModelRegistry::new());
    let mut config = FlConfig::tiny();
    config.rounds = 4;
    config.num_clients = 6;
    config.clients_per_round = 3;
    let mut sim = FlSimulation::new(
        config,
        clients(6, 10),
        Box::new(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            build_vision_model(ModelKind::SimpleCnn, model_cfg(), &mut rng)
        }),
        Box::new(FedAvgTrainer::new(LossKind::CrossEntropy)),
        AggregationMethod::FedAvg,
    );
    {
        let registry = Arc::clone(&registry);
        sim.run_with_checkpoints(2, move |rounds_done, model| {
            let version = registry.publish("simple_cnn", model);
            println!("round {rounds_done}: published global model as version {version}");
        });
    }

    // 2. Serve the latest checkpoint: 1 worker, dynamic batching up to 4
    //    requests / 500 µs.
    let server = Server::start(
        Arc::clone(&registry),
        "simple_cnn",
        || {
            let mut rng = StdRng::seed_from_u64(0);
            build_vision_model(ModelKind::SimpleCnn, model_cfg(), &mut rng)
        },
        &[3, PX, PX],
        ServerConfig::new(1, 64, BatchPolicy::new(4, 500)),
    )
    .expect("server start");
    println!(
        "serving model versions {:?} (latest wins)",
        registry.versions("simple_cnn")
    );

    // 3. A small closed-loop burst from 4 concurrent clients.
    std::thread::scope(|scope| {
        for t in 0..4 {
            let client = server.client();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(900 + t);
                for _ in 0..25 {
                    let x = Tensor::rand_uniform(&[3, PX, PX], 0.0, 1.0, &mut rng);
                    let response = client
                        .infer(x, Some(Duration::from_secs(1)))
                        .expect("request served");
                    assert_eq!(response.logits.len(), CLASSES);
                }
            });
        }
    });
    let metrics = server.metrics();
    println!(
        "served {} requests: p50 {} us, p99 {} us, mean batch {:.2}, histogram {:?}",
        metrics.completed,
        metrics.p50_us,
        metrics.p99_us,
        metrics.mean_batch,
        metrics.batch_histogram
    );

    // 4. Hot-swap: publish one more training round's model mid-serving.
    let new_version = registry.publish("simple_cnn", &mut sim.global_model());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let x = Tensor::rand_uniform(&[3, PX, PX], 0.0, 1.0, &mut StdRng::seed_from_u64(1));
        let response = server.client().infer(x, None).expect("request served");
        if response.model_version == new_version {
            println!("hot-swapped to version {new_version} without restarting");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never hot-swapped to version {new_version}"
        );
    }
    server.shutdown();
    println!("done");
}
