//! Umbrella crate for the HeteroSwitch reproduction workspace.
//!
//! This crate re-exports the public surface of every member crate so the
//! workspace-level examples and integration tests can use a single import
//! root. Downstream users normally depend on the individual crates
//! (`heteroswitch`, `hs-fl`, `hs-isp`, …) directly.

pub use heteroswitch as core;
pub use hs_data as data;
pub use hs_device as device;
pub use hs_fl as fl;
pub use hs_isp as isp;
pub use hs_metrics as metrics;
pub use hs_nn as nn;
pub use hs_obs as obs;
pub use hs_serve as serve;
pub use hs_tensor as tensor;
