//! The chaos acceptance test: the fixed-seed fault mix (30% stragglers,
//! 10% crashes, 5% transport drops, 5% corrupted updates, one injected
//! worker panic) against the full FL → registry → serving closed loop at
//! tiny scale.
//!
//! The acceptance bar, per `docs/ROBUSTNESS.md`:
//!
//! 1. the semi-sync FL run converges within 2 percentage points of the
//!    fault-free baseline's accuracy;
//! 2. no request is lost or hung — every submitted request resolves to a
//!    typed outcome and the load accounting balances;
//! 3. served availability is ≥ 99% excluding shed requests, injected
//!    worker panic included;
//! 4. the whole report's FL side reproduces bit-for-bit from the seeds.

use hs_bench::experiments::{chaos_study, ChaosConfig};

#[test]
fn chaos_mix_meets_the_acceptance_bar() {
    let cfg = ChaosConfig::tiny();
    let report = chaos_study(&cfg);

    // --- convergence: within 2pp of the fault-free baseline
    assert!(
        report.accuracy_gap_pp <= 2.0,
        "faults degraded accuracy beyond the acceptance bar: baseline {:.4}, faulty {:.4} ({:+.2} pp)",
        report.baseline_accuracy,
        report.faulty_accuracy,
        report.accuracy_gap_pp
    );

    // --- the fault mix actually fired: rounds dropped stragglers/crashes
    // and the cohort accounting partitions every round
    assert!(report.dropped_deadline > 0, "no straggler was ever dropped");
    assert!(report.dropped_crash > 0, "no crash was ever simulated");
    for r in &report.rounds {
        assert_eq!(
            r.completed
                + r.dropped_deadline
                + r.dropped_crash
                + r.dropped_transport
                + r.rejected_corrupt,
            r.participants.len(),
            "round {} counters do not partition its cohort",
            r.round
        );
        assert!(r.completed > 0, "round {} aggregated nothing", r.round);
    }

    // --- no request lost or hung: every submission resolved to a typed
    // outcome, and the books balance
    let load = &report.load;
    assert_eq!(
        load.attempted(),
        cfg.load_concurrency * cfg.load_per_client,
        "requests went missing: {load:?}"
    );
    assert_eq!(load.expired, 0, "no deadlines were set, nothing may expire");

    // --- availability >= 99% excluding shed, the injected panic included
    assert!(
        report.availability >= 0.99,
        "availability {:.4} under the 99% bar: {load:?}",
        report.availability
    );
    assert_eq!(
        report.serving.worker_panics, 1,
        "the injected worker panic must fire exactly once"
    );
    assert_eq!(
        report.serving.worker_restarts, 1,
        "the supervisor must respawn the panicked worker"
    );
}

#[test]
fn chaos_fl_side_reproduces_bit_for_bit_from_the_seed() {
    // two full runs of the same config: the FL side (round statistics and
    // final accuracies) must replay exactly — serving-side latency and
    // retry counts naturally vary with thread scheduling and are excluded
    let mut cfg = ChaosConfig::tiny();
    // the replay only needs the FL side; skip the panic so the second run's
    // serving path is not timing-coupled to the first's supervisor state
    cfg.inject_worker_panic = false;
    let a = chaos_study(&cfg);
    let b = chaos_study(&cfg);
    assert_eq!(a.rounds, b.rounds, "round histories diverged across runs");
    assert_eq!(a.baseline_accuracy.to_bits(), b.baseline_accuracy.to_bits());
    assert_eq!(a.faulty_accuracy.to_bits(), b.faulty_accuracy.to_bits());
    assert_eq!(
        (a.completed, a.dropped_deadline, a.dropped_crash),
        (b.completed, b.dropped_deadline, b.dropped_crash)
    );
}
