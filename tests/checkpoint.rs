//! Checkpoint property tests across the whole model zoo: bit-exact
//! round trips (fresh and fused, before and after training), cross-model
//! fingerprint rejection, truncated-file rejection, and the byte-stable
//! golden header.

use hs_nn::models::{build_vision_model, ecg_net, ModelKind, VisionConfig};
use hs_nn::{CheckpointError, CrossEntropyLoss, Network, Sgd, Target, CHECKPOINT_MAGIC};
use hs_tensor::{DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ZOO: [ModelKind; 4] = [
    ModelKind::SimpleCnn,
    ModelKind::MobileNetV3Small,
    ModelKind::ShuffleNetV2,
    ModelKind::SqueezeNet,
];

fn zoo_cfg() -> VisionConfig {
    VisionConfig::new(3, 5, 16)
}

fn zoo_model(kind: ModelKind, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    build_vision_model(kind, zoo_cfg(), &mut rng)
}

fn weight_bits(net: &mut Network) -> Vec<u32> {
    net.weights().iter().map(|v| v.to_bits()).collect()
}

/// One SGD step so parameters *and* batch-norm running buffers move away
/// from their initial values.
fn train_one_step(net: &mut Network, rng: &mut StdRng) {
    let x = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, rng);
    net.forward_backward(&x, &Target::Classes(vec![0, 1]), &CrossEntropyLoss);
    Sgd::new(0.05).step(net);
    net.zero_grad();
}

#[test]
fn round_trip_is_bit_exact_across_the_zoo_fresh_and_trained() {
    for kind in ZOO {
        let mut original = zoo_model(kind, 1);
        // fresh
        let bytes = original.to_checkpoint_bytes();
        let mut replica = zoo_model(kind, 2);
        replica.load_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(
            weight_bits(&mut original),
            weight_bits(&mut replica),
            "{kind:?} fresh round trip must be exact to the bit"
        );
        // post-training (parameters and BN running stats both moved)
        let mut rng = StdRng::seed_from_u64(3);
        train_one_step(&mut original, &mut rng);
        let trained = original.to_checkpoint_bytes();
        assert_ne!(trained, bytes, "{kind:?}: training must change the bytes");
        let mut replica = zoo_model(kind, 4);
        replica.load_checkpoint_bytes(&trained).unwrap();
        assert_eq!(
            weight_bits(&mut original),
            weight_bits(&mut replica),
            "{kind:?} post-training round trip must be exact to the bit"
        );
    }
}

#[test]
fn fused_and_unfused_replicas_share_checkpoints() {
    // the serving path: FL publishes from a plain global model, the server
    // loads into a fused replica — and the reverse must hold too
    for kind in ZOO {
        let mut rng = StdRng::seed_from_u64(5);
        let mut plain = zoo_model(kind, 1);
        train_one_step(&mut plain, &mut rng);
        let bytes = plain.to_checkpoint_bytes();

        let mut fused = zoo_model(kind, 2);
        fused.fuse_inference();
        assert_eq!(
            plain.fingerprint(),
            fused.fingerprint(),
            "{kind:?}: fusion must not change the topology fingerprint"
        );
        fused.load_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(
            weight_bits(&mut plain),
            weight_bits(&mut fused),
            "{kind:?} plain→fused load must be exact to the bit"
        );
        // a checkpoint re-saved from the fused replica loads back into a
        // plain one bit-exact (bytes differ only in the diagnostic buffer
        // names, which carry the fused layer names)
        let refused = fused.to_checkpoint_bytes();
        let mut plain2 = zoo_model(kind, 3);
        plain2.load_checkpoint_bytes(&refused).unwrap();
        assert_eq!(
            weight_bits(&mut plain),
            weight_bits(&mut plain2),
            "{kind:?} fused→plain load must be exact to the bit"
        );
        // and the loaded weights actually drive inference: outputs match
        let x = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let expect = plain.infer(&x).clone();
        let got = fused.infer(&x);
        for (a, b) in expect.as_slice().iter().zip(got.as_slice()) {
            assert!(
                (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                "{kind:?}: fused replica diverges after load: {a} vs {b}"
            );
        }
    }
}

#[test]
fn ecg_model_round_trips_too() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut original = ecg_net(32, &mut rng);
    let bytes = original.to_checkpoint_bytes();
    let mut replica = ecg_net(32, &mut rng);
    replica.load_checkpoint_bytes(&bytes).unwrap();
    assert_eq!(weight_bits(&mut original), weight_bits(&mut replica));
}

#[test]
fn cross_model_loads_are_rejected_by_fingerprint() {
    let mut donors: Vec<(ModelKind, Vec<u8>)> = ZOO
        .iter()
        .map(|&kind| (kind, zoo_model(kind, 1).to_checkpoint_bytes()))
        .collect();
    // every (donor, recipient) pair of *different* architectures must fail
    // with the fingerprint error, and leave the recipient untouched
    for (donor_kind, bytes) in donors.drain(..) {
        for recipient_kind in ZOO {
            if recipient_kind == donor_kind {
                continue;
            }
            let mut recipient = zoo_model(recipient_kind, 2);
            let before = recipient.weights();
            let err = recipient.load_checkpoint_bytes(&bytes).unwrap_err();
            assert!(
                matches!(err, CheckpointError::FingerprintMismatch { .. }),
                "{donor_kind:?} → {recipient_kind:?}: expected fingerprint mismatch, got {err}"
            );
            assert_eq!(recipient.weights(), before);
        }
    }
}

#[test]
fn truncated_files_are_rejected_with_actionable_errors() {
    let dir = std::env::temp_dir().join(format!("hs_ckpt_zoo_{}", std::process::id()));
    let path = dir.join("model.ckpt");
    let mut original = zoo_model(ModelKind::SimpleCnn, 1);
    original.save_checkpoint(&path).unwrap();
    let full = std::fs::read(&path).unwrap();

    let mut replica = zoo_model(ModelKind::SimpleCnn, 2);
    let before = replica.weights();
    for frac in [0.1, 0.5, 0.99] {
        let cut = (full.len() as f64 * frac) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();
        let err = replica.load_checkpoint(&path).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("truncated"),
            "cut at {frac}: error should say truncated, said: {msg}"
        );
        assert_eq!(replica.weights(), before, "failed load must not mutate");
    }
    // a missing file surfaces the I/O error
    let err = replica
        .load_checkpoint(&dir.join("does_not_exist.ckpt"))
        .unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hand-encodes the frozen v1 layout (flat f32 params, no dtype tags, no
/// checksums) for an f32 network — what every pre-v2 checkpoint on disk
/// looks like.
fn encode_v1(net: &mut Network) -> Vec<u8> {
    fn put_str(out: &mut Vec<u8>, s: &str) {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    let mut out = Vec::new();
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&1u32.to_le_bytes());
    out.extend_from_slice(&net.fingerprint().to_le_bytes());
    let total: usize = net.params_mut().iter().map(|p| p.len()).sum();
    out.extend_from_slice(&(total as u64).to_le_bytes());
    for p in net.params_mut() {
        for v in p.value.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let buffers = net.buffers_mut();
    out.extend_from_slice(&(buffers.len() as u64).to_le_bytes());
    for b in buffers {
        put_str(&mut out, "buffer");
        let dims = b.dims();
        out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
        for &d in dims {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for v in b.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

#[test]
fn v1_checkpoints_load_bit_exactly_across_the_zoo() {
    for kind in ZOO {
        let mut rng = StdRng::seed_from_u64(7);
        let mut original = zoo_model(kind, 1);
        train_one_step(&mut original, &mut rng);
        let v1 = encode_v1(&mut original);
        let mut replica = zoo_model(kind, 2);
        replica.load_checkpoint_bytes(&v1).unwrap();
        assert_eq!(
            weight_bits(&mut original),
            weight_bits(&mut replica),
            "{kind:?}: v1 load must be exact to the bit"
        );
        // and the migrated save is v2 with the same fingerprint
        let v2 = replica.to_checkpoint_bytes();
        assert_eq!(&v2[8..12], &2u32.to_le_bytes());
        assert_eq!(v2[12..20], v1[12..20], "fingerprint must survive v1→v2");
        let mut replica2 = zoo_model(kind, 3);
        replica2.load_checkpoint_bytes(&v2).unwrap();
        assert_eq!(weight_bits(&mut replica), weight_bits(&mut replica2));
    }
}

#[test]
fn quantized_replicas_round_trip_and_stay_close_across_the_zoo() {
    for kind in ZOO {
        let mut rng = StdRng::seed_from_u64(8);
        let mut f32_net = zoo_model(kind, 1);
        let x = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let expect = f32_net.infer(&x).clone();

        // f32 checkpoint → f16 replica (quantize-on-load, the serving path)
        let bytes = f32_net.to_checkpoint_bytes();
        let mut f16_net = zoo_model(kind, 2);
        f16_net.to_dtype(DType::F16);
        assert_eq!(
            f32_net.fingerprint(),
            f16_net.fingerprint(),
            "{kind:?}: quantization must not change the fingerprint"
        );
        f16_net.load_checkpoint_bytes(&bytes).unwrap();
        let got = f16_net.infer(&x).clone();
        for (a, b) in expect.as_slice().iter().zip(got.as_slice()) {
            assert!(
                (a - b).abs() <= 1e-2 * a.abs().max(1.0),
                "{kind:?}: f16 replica drifted past 1e-2 rel: {a} vs {b}"
            );
        }

        // f16 save → f16 load is byte-stable (no quantize/dequantize churn)
        let f16_bytes = f16_net.to_checkpoint_bytes();
        let mut f16_twin = zoo_model(kind, 3);
        f16_twin.to_dtype(DType::F16);
        f16_twin.load_checkpoint_bytes(&f16_bytes).unwrap();
        assert_eq!(
            f16_twin.to_checkpoint_bytes(),
            f16_bytes,
            "{kind:?}: f16 round trip must be byte-stable"
        );
    }
}

#[test]
fn checkpoint_header_is_byte_stable() {
    // golden pin of the 28-byte header (magic + version + fingerprint +
    // parameter-tensor count) for the zoo SimpleCnn at VisionConfig(3, 5,
    // 16). This must only ever change with a deliberate format-version bump
    // or an intentional architecture change — update the constant in the
    // same commit and say why. Bumped to version 2 (and the count field
    // from flat scalars to per-tensor entries) when dtype tags and CRC-32
    // checksums were added; the fingerprint algorithm was untouched, so
    // GOLDEN_FINGERPRINT survives from v1.
    let mut net = zoo_model(ModelKind::SimpleCnn, 1);
    let bytes = net.to_checkpoint_bytes();
    assert_eq!(&bytes[..8], &CHECKPOINT_MAGIC);
    assert_eq!(&bytes[8..12], &2u32.to_le_bytes()); // format version
    let mut expected_header = Vec::new();
    expected_header.extend_from_slice(b"HSNNCKPT");
    expected_header.extend_from_slice(&2u32.to_le_bytes());
    expected_header.extend_from_slice(&net.fingerprint().to_le_bytes());
    expected_header.extend_from_slice(&(GOLDEN_PARAM_TENSORS as u64).to_le_bytes());
    assert_eq!(&bytes[..28], &expected_header[..]);
    // the golden values themselves, pinned as literals
    assert_eq!(
        net.fingerprint(),
        GOLDEN_FINGERPRINT,
        "SimpleCnn topology fingerprint moved — format or architecture change?"
    );
    assert_eq!(net.param_stores().len(), GOLDEN_PARAM_TENSORS);
}

/// Pinned by `checkpoint_header_is_byte_stable`.
const GOLDEN_FINGERPRINT: u64 = 0x08d9_4900_839b_10a8;
/// Pinned by `checkpoint_header_is_byte_stable`.
const GOLDEN_PARAM_TENSORS: usize = 12;
