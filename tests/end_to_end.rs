//! Cross-crate integration tests: the full pipeline from device fleet through
//! dataset generation, federated training and evaluation.

use heteroswitch::{HeteroSwitchConfig, HeteroSwitchTrainer, Policy};
use hs_data::{
    build_device_datasets, build_ecg_datasets, split_evenly, CaptureMode, EcgConfig,
    Imagenet12Config, Labels,
};
use hs_device::paper_devices;
use hs_fl::{
    evaluate_accuracy, evaluate_heart_rate, AggregationMethod, ClientData, ClientTrainer,
    FedAvgTrainer, FlConfig, FlSimulation, LossKind, ModelFactory,
};
use hs_metrics::heart_rate_deviation;
use hs_nn::models::{build_vision_model, ecg_net, ModelKind, VisionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_imagenet_cfg() -> Imagenet12Config {
    let mut cfg = Imagenet12Config::tiny();
    cfg.num_classes = 3;
    cfg.image_size = 8;
    cfg.scene_size = 16;
    cfg.train_per_class = 3;
    cfg.test_per_class = 2;
    cfg
}

fn vision_factory(cfg: Imagenet12Config) -> ModelFactory {
    let vision = VisionConfig::new(3, cfg.num_classes, cfg.image_size);
    Box::new(move |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        build_vision_model(ModelKind::SimpleCnn, vision, &mut rng)
    })
}

fn fl_population(
    cfg: Imagenet12Config,
    devices: usize,
    clients_per_device: usize,
) -> (Vec<ClientData>, Vec<(String, hs_data::Dataset)>) {
    let fleet = paper_devices();
    let datasets = build_device_datasets(&fleet[..devices], cfg, 3);
    let mut clients = Vec::new();
    for (d, ds) in datasets.iter().enumerate() {
        for (i, shard) in split_evenly(&ds.train, clients_per_device, d as u64)
            .into_iter()
            .enumerate()
        {
            clients.push(ClientData {
                id: d * clients_per_device + i,
                device: ds.device.clone(),
                data: shard,
            });
        }
    }
    let tests = datasets
        .iter()
        .map(|d| (d.device.clone(), d.test.clone()))
        .collect();
    (clients, tests)
}

#[test]
fn device_pipeline_produces_learnable_heterogeneous_data() {
    // the full scene → sensor → ISP → tensor path produces valid,
    // device-dependent training data
    let cfg = tiny_imagenet_cfg();
    let fleet = paper_devices();
    let datasets = build_device_datasets(&fleet, cfg, 9);
    assert_eq!(datasets.len(), 9);
    for ds in &datasets {
        assert_eq!(ds.train.len(), cfg.num_classes * cfg.train_per_class);
        for x in &ds.train.x {
            assert_eq!(x.dims(), &[3, cfg.image_size, cfg.image_size]);
            assert!(x.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        }
        match &ds.train.labels {
            Labels::Classes(labels) => assert!(labels.iter().all(|&l| l < cfg.num_classes)),
            _ => panic!("expected class labels"),
        }
    }
    // heterogeneity: the same sample index differs between the most and
    // least advanced devices
    let a = &datasets[0].train.x[0];
    let b = &datasets[6].train.x[0];
    let diff: f32 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .sum::<f32>()
        / a.len() as f32;
    assert!(diff > 0.005, "device renditions should differ, got {diff}");
}

#[test]
fn raw_mode_differs_from_processed_mode() {
    let mut cfg = tiny_imagenet_cfg();
    let fleet = paper_devices();
    let processed = build_device_datasets(&fleet[..1], cfg, 5);
    cfg.mode = CaptureMode::Raw;
    let raw = build_device_datasets(&fleet[..1], cfg, 5);
    let diff: f32 = processed[0].train.x[0]
        .as_slice()
        .iter()
        .zip(raw[0].train.x[0].as_slice())
        .map(|(a, b)| (a - b).abs())
        .sum::<f32>();
    assert!(diff > 0.1, "RAW and processed captures should differ");
}

#[test]
fn federated_training_with_fedavg_and_heteroswitch_completes_and_learns() {
    let cfg = tiny_imagenet_cfg();
    let (clients, tests) = fl_population(cfg, 3, 2);
    let mut fl = FlConfig::tiny();
    fl.num_clients = clients.len();
    fl.clients_per_round = 3;
    fl.rounds = 6;
    fl.batch_size = 4;

    let trainers: Vec<(&str, Box<dyn ClientTrainer>)> = vec![
        (
            "FedAvg",
            Box::new(FedAvgTrainer::new(LossKind::CrossEntropy)),
        ),
        (
            "HeteroSwitch",
            Box::new(HeteroSwitchTrainer::new(
                HeteroSwitchConfig::default(),
                LossKind::CrossEntropy,
                Policy::Selective,
            )),
        ),
    ];
    for (name, trainer) in trainers {
        let mut sim = FlSimulation::new(
            fl,
            clients.clone(),
            vision_factory(cfg),
            trainer,
            AggregationMethod::FedAvg,
        );
        let history = sim.run();
        assert_eq!(history.len(), 6, "{name} must run all rounds");
        assert!(history.iter().all(|r| r.mean_train_loss.is_finite()));
        // the loss EMA is finite after the first round
        assert!(history[0].loss_ema.is_finite());
        let groups = sim.evaluate_per_device(&tests);
        assert_eq!(groups.len(), 3);
        for g in groups {
            assert!(
                (0.0..=1.0).contains(&g.accuracy),
                "{name}: accuracy out of range on {}",
                g.group
            );
        }
    }
}

#[test]
fn heteroswitch_and_fedavg_agree_in_round_zero_then_diverge() {
    // round 0 has no EMA, so HeteroSwitch must behave exactly like FedAvg;
    // with more rounds the selective switching kicks in and the models differ
    let cfg = tiny_imagenet_cfg();
    let (clients, _) = fl_population(cfg, 2, 2);
    let mut fl = FlConfig::tiny();
    fl.num_clients = clients.len();
    fl.clients_per_round = 2;
    fl.rounds = 1;

    let run = |rounds: usize, hetero: bool| -> Vec<f32> {
        let mut fl = fl;
        fl.rounds = rounds;
        let trainer: Box<dyn ClientTrainer> = if hetero {
            Box::new(HeteroSwitchTrainer::new(
                HeteroSwitchConfig::default(),
                LossKind::CrossEntropy,
                Policy::Selective,
            ))
        } else {
            Box::new(FedAvgTrainer::new(LossKind::CrossEntropy))
        };
        let mut sim = FlSimulation::new(
            fl,
            clients.clone(),
            vision_factory(cfg),
            trainer,
            AggregationMethod::FedAvg,
        );
        sim.run();
        sim.global_weights().to_vec()
    };

    assert_eq!(run(1, false), run(1, true), "round 0 must match FedAvg");
    assert_ne!(run(4, false), run(4, true), "later rounds must diverge");
}

#[test]
fn ecg_federated_pipeline_estimates_heart_rate() {
    let mut cfg = EcgConfig::tiny();
    cfg.train_per_sensor = 12;
    cfg.test_per_sensor = 6;
    let datasets = build_ecg_datasets(cfg, 2);
    let mut clients = Vec::new();
    for (d, ds) in datasets.iter().enumerate() {
        clients.push(ClientData {
            id: d,
            device: ds.device.clone(),
            data: ds.train.clone(),
        });
    }
    let mut fl = FlConfig::tiny();
    fl.num_clients = clients.len();
    fl.clients_per_round = 2;
    fl.rounds = 15;
    fl.batch_size = 6;
    fl.lr = 0.05;

    let window = cfg.window;
    let mut sim = FlSimulation::new(
        fl,
        clients,
        Box::new(move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            ecg_net(window, &mut rng)
        }),
        Box::new(HeteroSwitchTrainer::new(
            HeteroSwitchConfig::ecg(),
            LossKind::Mse,
            Policy::Selective,
        )),
        AggregationMethod::FedAvg,
    );
    let history = sim.run();
    // training loss should trend down
    assert!(history.last().unwrap().mean_train_loss <= history[0].mean_train_loss);
    let mut net = sim.global_model();
    for ds in &datasets {
        let (pred, actual) = evaluate_heart_rate(&mut net, &ds.test, 200.0);
        let deviation = heart_rate_deviation(&pred, &actual);
        assert!(deviation.is_finite());
        assert!(
            deviation < 100.0,
            "deviation on {} should be bounded, got {deviation}%",
            ds.device
        );
    }
}

#[test]
fn centralized_training_beats_chance_on_device_data() {
    // sanity: the NN substrate can actually learn the procedural classes
    let cfg = tiny_imagenet_cfg();
    let fleet = paper_devices();
    let datasets = build_device_datasets(&fleet[..1], cfg, 21);
    let train = &datasets[0].train;
    let test = &datasets[0].test;
    let vision = VisionConfig::new(3, cfg.num_classes, cfg.image_size);
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = build_vision_model(ModelKind::SimpleCnn, vision, &mut rng);
    let mut opt = hs_nn::Sgd::new(0.1);
    for _ in 0..40 {
        let (x, target) = train.full_batch();
        net.forward_backward(&x, &target, &hs_nn::CrossEntropyLoss);
        opt.step(&mut net);
    }
    let acc = evaluate_accuracy(&mut net, test);
    let chance = 1.0 / cfg.num_classes as f32;
    assert!(
        acc > chance,
        "trained accuracy {acc} should beat chance {chance}"
    );
}
