//! Fleet-scale memory acceptance: resident client state is O(cohort), not
//! O(fleet).
//!
//! A counting `#[global_allocator]` wraps the system allocator and tracks
//! live and peak heap bytes. The test runs the same faulted semi-sync
//! round — same cohort size, same model, same fault plan — over a
//! 2 000-client fleet and a 100 000-client fleet, and asserts the peak
//! heap consumed by the 50×-larger fleet stays within a small factor of
//! the small fleet's. With the PR 8 lazy client backend the fleet is an
//! O(bytes) description (seed + device mix + sample counts) and datasets
//! exist only while their cohort member trains, so peak memory is set by
//! the cohort, not the population.
//!
//! The file contains exactly one `#[test]` on purpose: the harness runs
//! tests inside a binary concurrently, and a second test allocating in
//! parallel would pollute the peak-tracking measurement.

use heteroswitch_repro::data::LazyClientSet;
use heteroswitch_repro::device::{paper_devices, FaultInjector, FaultPlan, FleetSpec};
use heteroswitch_repro::fl::{
    AggregationMethod, CohortStrategy, FedAvgTrainer, FlConfig, FlSimulation, LossKind,
    ModelFactory, SemiSyncPolicy,
};
use heteroswitch_repro::nn::{Flatten, Linear, Network, Relu, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tracks live heap bytes and the high-water mark across all threads.
struct CountingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

// SAFETY: every operation is forwarded verbatim to `System` (which upholds
// the GlobalAlloc contract); the only added behaviour is lock-free atomic
// bookkeeping, which cannot allocate or re-enter the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller's layout contract is passed through to `System` as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    // SAFETY: caller's ptr/layout contract is passed through to `System`
    // as-is; the counter updates after freeing touch no freed memory.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` and returns the peak heap growth (bytes above the live
/// baseline at entry) observed while it ran.
fn peak_heap_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let result = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (peak.saturating_sub(base), result)
}

const IMAGE_SIZE: usize = 8;
const NUM_CLASSES: usize = 4;
const SEED: u64 = 0xF1EE_7003;
const CLIENTS_PER_ROUND: usize = 64;

fn tiny_mlp() -> ModelFactory {
    Box::new(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(3 * IMAGE_SIZE * IMAGE_SIZE, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(16, NUM_CLASSES, &mut rng)),
        ]))
    })
}

fn build_simulation(fleet_size: usize) -> FlSimulation {
    let fleet = Arc::new(FleetSpec::from_profiles(
        fleet_size,
        &paper_devices(),
        (2, 4),
        SEED,
    ));
    let source = Arc::new(LazyClientSet::new(
        Arc::clone(&fleet),
        NUM_CLASSES,
        IMAGE_SIZE,
        SEED,
    ));

    let mut config = FlConfig::tiny();
    config.num_clients = fleet_size;
    config.clients_per_round = CLIENTS_PER_ROUND;
    config.rounds = 1;
    config.batch_size = 2;
    config.local_epochs = 1;
    config.seed = SEED;

    let plan = FaultPlan {
        seed: SEED,
        straggler_rate: 0.2,
        straggler_slowdown: (2.0, 8.0),
        crash_rate: 0.05,
        transport_drop_rate: 0.03,
        corrupt_rate: 0.02,
    };
    let policy = SemiSyncPolicy {
        over_provision: 1.25,
        deadline_factor: 2.0,
        norm_bound_factor: 8.0,
    };

    FlSimulation::with_source(
        config,
        source,
        tiny_mlp(),
        Box::new(FedAvgTrainer::new(LossKind::CrossEntropy)),
        AggregationMethod::FedAvg,
    )
    .with_cohort_strategy(CohortStrategy::DeviceStratified)
    .with_faults(FaultInjector::with_fleet(plan, fleet), policy)
}

/// Builds the fleet, runs one faulted semi-sync round and returns the
/// aggregated-update count, all inside the peak-heap measurement window.
fn measure_round(fleet_size: usize) -> (usize, usize) {
    let (peak, completed) = peak_heap_during(|| {
        let mut sim = build_simulation(fleet_size);
        let history = sim.run();
        assert_eq!(history.len(), 1);
        assert!(
            history[0].completed > 0,
            "fleet {fleet_size}: round aggregated nothing"
        );
        history[0].completed
    });
    (peak, completed)
}

#[test]
fn peak_memory_is_independent_of_fleet_size() {
    // Warm up thread-pool and harness allocations (worker stacks, channel
    // buffers) so neither measured window pays one-time setup costs.
    measure_round(2_000);

    let (peak_small, _) = measure_round(2_000);
    let (peak_large, _) = measure_round(100_000);

    // The 50× fleet may cost a little more transient heap (sampler
    // scratch, stats vectors are O(cohort) but allocator noise exists);
    // it must not cost anywhere near 50× . A 1.5× factor plus a fixed
    // 256 KiB slack keeps the bound tight enough to catch any O(fleet)
    // materialization (2 000 eager clients alone would be ~4 MB of image
    // tensors; 100 000 would be ~200 MB) while staying robust to
    // allocator jitter.
    let bound = peak_small + peak_small / 2 + 256 * 1024;
    assert!(
        peak_large <= bound,
        "peak heap grew with fleet size: 2k fleet peaked at {peak_small} B, \
         100k fleet peaked at {peak_large} B (bound {bound} B) — client \
         state is no longer O(cohort)"
    );
}
