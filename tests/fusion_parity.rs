//! Parity suite for the fused inference engine (PR 2): the fused
//! conv+BN+activation path, the planned (arena) forward and the shared-state
//! sharded eval path are pinned against the unfused layer-by-layer
//! reference across random shapes, grouped/strided/padded convolutions and
//! every supported activation — including the exact train-mode fallback and
//! the guarantee that evaluation never mutates batch-norm running
//! statistics.

use heteroswitch_repro::data::{Dataset, Labels};
use heteroswitch_repro::fl::evaluate_accuracy;
use heteroswitch_repro::nn::models::{build_vision_model, ModelKind, VisionConfig};
use heteroswitch_repro::nn::{
    BatchNorm2d, Conv2d, ConvAlgo, CrossEntropyLoss, Layer, LeakyRelu, Network, Relu, Relu6,
    Sequential, Target,
};
use heteroswitch_repro::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative tolerance of the fused path vs the unfused reference (the
/// acceptance bar: ≤ 1e-4 rel).
const REL_TOL: f32 = 1e-4;

fn assert_close(a: &Tensor, b: &Tensor, ctx: &str) {
    assert_eq!(a.dims(), b.dims(), "{ctx}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            (x - y).abs() <= REL_TOL * x.abs().max(y.abs()).max(1.0),
            "{ctx}: element {i}: {x} vs {y}"
        );
    }
}

/// Builds `[conv, bn?, act?]` twice from one seed (identical weights): the
/// unfused reference and a to-be-fused copy.
#[allow(clippy::too_many_arguments)]
fn conv_stack(
    seed: u64,
    cin: usize,
    cout: usize,
    k: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    with_bn: bool,
    act: usize,
) -> (Network, Network) {
    let build = |rng: &mut StdRng| {
        let mut layers: Vec<Box<dyn Layer>> = vec![Box::new(Conv2d::new(
            cin, cout, k, stride, pad, groups, rng,
        ))];
        if with_bn {
            layers.push(Box::new(BatchNorm2d::new(cout)));
        }
        match act {
            1 => layers.push(Box::new(Relu::new())),
            2 => layers.push(Box::new(LeakyRelu::new(0.1))),
            3 => layers.push(Box::new(Relu6::new())),
            _ => {}
        }
        Network::new(Sequential::new(layers))
    };
    let reference = build(&mut StdRng::seed_from_u64(seed));
    let fused = build(&mut StdRng::seed_from_u64(seed));
    (reference, fused)
}

/// Runs a few training steps on both networks (same data) so batch-norm
/// running statistics are non-trivial and identical.
fn warm_bn(reference: &mut Network, fused: &mut Network, x: &Tensor) {
    for net in [&mut *reference, &mut *fused] {
        for _ in 0..3 {
            let _ = net.forward(x, true);
        }
    }
}

#[test]
fn fused_conv_bn_act_matches_unfused_across_configs() {
    let mut rng = StdRng::seed_from_u64(100);
    // (cin, cout, kernel, stride, pad, groups, h, w)
    let configs = [
        (
            3usize, 8usize, 3usize, 1usize, 1usize, 1usize, 9usize, 9usize,
        ),
        (4, 6, 3, 2, 1, 2, 8, 10),  // grouped, strided
        (6, 6, 3, 1, 1, 6, 7, 7),   // depthwise
        (2, 4, 5, 2, 2, 1, 11, 13), // large kernel, heavy padding
        (4, 4, 1, 1, 0, 1, 6, 6),   // pointwise
    ];
    for (case, &(cin, cout, k, s, p, g, h, w)) in configs.iter().enumerate() {
        for with_bn in [true, false] {
            for act in 0..4usize {
                let seed = 1000 + case as u64 * 16 + act as u64 + if with_bn { 8 } else { 0 };
                let (mut reference, mut fused) =
                    conv_stack(seed, cin, cout, k, s, p, g, with_bn, act);
                let n = rng.gen_range(1..4);
                let x_warm = Tensor::rand_uniform(&[3, cin, h, w], -1.0, 1.0, &mut rng);
                warm_bn(&mut reference, &mut fused, &x_warm);
                fused.fuse_inference();

                let x = Tensor::rand_uniform(&[n, cin, h, w], -1.5, 1.5, &mut rng);
                let ctx =
                    format!("cin={cin} cout={cout} k={k} s={s} p={p} g={g} bn={with_bn} act={act}");
                let expect = reference.forward(&x, false);
                // fused forward
                assert_close(
                    &fused.forward(&x, false),
                    &expect,
                    &format!("{ctx} [fused]"),
                );
                // planned (arena) forward
                assert_close(&fused.infer(&x).clone(), &expect, &format!("{ctx} [plan]"));
                // shared-state eval forward
                let shared = fused
                    .forward_eval(&x)
                    .expect("built-ins support shared eval");
                assert_close(&shared, &expect, &format!("{ctx} [shared]"));
            }
        }
    }
}

#[test]
fn fused_paths_match_unfused_on_every_forced_conv_backend() {
    // the full fused/planned/shared-eval parity contract, swept over every
    // ConvAlgo forced network-wide: backends must be interchangeable under
    // fusion (epilogue semantics included), with inapplicable geometries
    // falling back to im2col. Winograd re-associates the arithmetic, so
    // this sweep pins ≤1e-3 rel (the backend acceptance bar) instead of the
    // default-path 1e-4.
    let mut rng = StdRng::seed_from_u64(300);
    // (cin, cout, kernel, stride, pad, groups, h, w)
    let configs = [
        (
            4usize, 8usize, 3usize, 1usize, 1usize, 1usize, 9usize, 9usize,
        ), // winograd-eligible
        (4, 6, 3, 2, 1, 2, 8, 10), // grouped, strided
        (6, 6, 3, 1, 1, 6, 7, 7),  // depthwise
        (5, 5, 5, 2, 2, 5, 11, 9), // strided depthwise, 5×5
        (4, 4, 1, 1, 0, 1, 6, 6),  // pointwise
    ];
    for algo in [
        ConvAlgo::Im2colGemm,
        ConvAlgo::Winograd,
        ConvAlgo::DirectDepthwise,
    ] {
        for (case, &(cin, cout, k, s, p, g, h, w)) in configs.iter().enumerate() {
            for act in 0..4usize {
                let seed = 7000 + case as u64 * 8 + act as u64;
                let (mut reference, mut fused) = conv_stack(seed, cin, cout, k, s, p, g, true, act);
                let x_warm = Tensor::rand_uniform(&[2, cin, h, w], -1.0, 1.0, &mut rng);
                warm_bn(&mut reference, &mut fused, &x_warm);
                fused.fuse_inference();
                fused.force_conv_algo(Some(algo));

                let x = Tensor::rand_uniform(&[2, cin, h, w], -1.5, 1.5, &mut rng);
                let expect = reference.forward(&x, false);
                let ctx =
                    format!("{algo:?} cin={cin} cout={cout} k={k} s={s} p={p} g={g} act={act}");
                let check = |got: &Tensor, path: &str| {
                    assert_eq!(got.dims(), expect.dims(), "{ctx} [{path}]: shape");
                    for (i, (a, b)) in got.as_slice().iter().zip(expect.as_slice()).enumerate() {
                        assert!(
                            (a - b).abs() <= 1e-3 * a.abs().max(b.abs()).max(1.0),
                            "{ctx} [{path}]: element {i}: {a} vs {b}"
                        );
                    }
                };
                check(&fused.forward(&x, false), "fused");
                check(&fused.infer(&x).clone(), "plan");
                check(
                    &fused
                        .forward_eval(&x)
                        .expect("built-ins support shared eval"),
                    "shared",
                );
            }
        }
    }
}

#[test]
fn depthwise_backend_propagates_nan_like_the_unfused_path() {
    // a NaN pixel must flow through the direct depthwise kernel — fused
    // epilogue included — exactly as through the unfused conv+bn+act stack
    // (ReLU maps NaN to 0 like f32::max; LeakyReLU propagates it)
    for act in [1usize, 2] {
        let (mut reference, mut fused) = conv_stack(91, 4, 4, 3, 1, 1, 4, true, act);
        let mut rng = StdRng::seed_from_u64(92);
        let x_warm = Tensor::rand_uniform(&[2, 4, 8, 8], -1.0, 1.0, &mut rng);
        warm_bn(&mut reference, &mut fused, &x_warm);
        fused.fuse_inference();
        fused.force_conv_algo(Some(ConvAlgo::DirectDepthwise));

        let mut x = Tensor::rand_uniform(&[1, 4, 8, 8], -1.0, 1.0, &mut rng);
        *x.at_mut(&[0, 1, 3, 3]) = f32::NAN;
        let expect = reference.forward(&x, false);
        let got = fused.forward(&x, false);
        assert!(
            expect.as_slice().iter().any(|v| v.is_nan()) || act == 1,
            "test setup: the NaN should reach the output unless ReLU clears it"
        );
        for (i, (a, b)) in got.as_slice().iter().zip(expect.as_slice()).enumerate() {
            assert_eq!(
                a.is_nan(),
                b.is_nan(),
                "act={act}: element {i}: NaN divergence {a} vs {b}"
            );
            if !a.is_nan() {
                assert!(
                    (a - b).abs() <= 1e-3 * a.abs().max(b.abs()).max(1.0),
                    "act={act}: element {i}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn fused_train_mode_falls_back_exactly() {
    // training through the fused network must be bit-identical to the
    // unfused stack: same outputs, same gradients, same BN statistics drift
    let (mut reference, mut fused) = conv_stack(42, 3, 6, 3, 1, 1, 1, true, 1);
    fused.fuse_inference();
    let mut rng = StdRng::seed_from_u64(43);
    for step in 0..3 {
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut rng);
        let y_ref = reference.forward(&x, true);
        let y_fused = fused.forward(&x, true);
        assert_eq!(y_ref, y_fused, "step {step}: training outputs diverged");
        let grad = Tensor::rand_uniform(y_ref.dims(), -1.0, 1.0, &mut rng);
        let gin_ref = reference.backward(&grad);
        let gin_fused = fused.backward(&grad);
        assert_eq!(gin_ref, gin_fused, "step {step}: input gradients diverged");
        assert_eq!(
            reference.gradients(),
            fused.gradients(),
            "step {step}: gradients diverged"
        );
        assert_eq!(
            reference.weights(),
            fused.weights(),
            "step {step}: weights/buffers diverged"
        );
        reference.zero_grad();
        fused.zero_grad();
    }
}

#[test]
fn fusion_is_weight_layout_invariant_on_the_model_zoo() {
    for kind in [
        ModelKind::SimpleCnn,
        ModelKind::MobileNetV3Small,
        ModelKind::ShuffleNetV2,
        ModelKind::SqueezeNet,
    ] {
        let cfg = VisionConfig::new(3, 8, 16);
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = build_vision_model(kind, cfg, &mut rng);
        let before = net.weights();
        net.fuse_inference();
        assert_eq!(net.weights(), before, "{kind:?}: fusion reordered weights");
    }
}

#[test]
fn fused_model_zoo_inference_matches_unfused() {
    let mut rng = StdRng::seed_from_u64(6);
    for kind in [
        ModelKind::SimpleCnn,
        ModelKind::MobileNetV3Small,
        ModelKind::ShuffleNetV2,
        ModelKind::SqueezeNet,
    ] {
        let cfg = VisionConfig::new(3, 8, 16);
        let mut reference = build_vision_model(kind, cfg, &mut StdRng::seed_from_u64(9));
        let mut fused = build_vision_model(kind, cfg, &mut StdRng::seed_from_u64(9));
        let x_warm = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        warm_bn(&mut reference, &mut fused, &x_warm);
        fused.fuse_inference();
        let x = Tensor::rand_uniform(&[3, 3, 16, 16], 0.0, 1.0, &mut rng);
        let expect = reference.forward(&x, false);
        assert_close(
            &fused.forward(&x, false),
            &expect,
            &format!("{kind:?} [fused]"),
        );
        assert_close(
            &fused.infer(&x).clone(),
            &expect,
            &format!("{kind:?} [plan]"),
        );
        let shared = fused
            .forward_eval(&x)
            .expect("zoo layers support shared eval");
        assert_close(&shared, &expect, &format!("{kind:?} [shared]"));
    }
}

#[test]
fn planned_forward_reuses_arena_across_shapes() {
    // changing batch size between calls must be safe (arena resizes), and
    // repeated calls must be deterministic
    let (_, mut fused) = conv_stack(7, 3, 4, 3, 1, 1, 1, true, 1);
    fused.fuse_inference();
    let mut rng = StdRng::seed_from_u64(8);
    let x2 = Tensor::rand_uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut rng);
    let x5 = Tensor::rand_uniform(&[5, 3, 10, 10], -1.0, 1.0, &mut rng);
    let a1 = fused.infer(&x2).clone();
    let b1 = fused.infer(&x5).clone();
    let a2 = fused.infer(&x2).clone();
    let b2 = fused.infer(&x5).clone();
    assert_eq!(a1, a2);
    assert_eq!(b1, b2);
    assert_eq!(a1.dims()[0], 2);
    assert_eq!(b1.dims()[0], 5);
}

#[test]
fn eval_paths_never_mutate_bn_running_stats() {
    // the PR-2 "small fix" pin: predict_classes, eval_loss, infer,
    // forward_eval and sharded evaluate_accuracy must leave every weight
    // and buffer (incl. BN running stats) untouched
    let cfg = VisionConfig::new(3, 4, 16);
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = build_vision_model(ModelKind::SimpleCnn, cfg, &mut rng);
    let x_warm = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
    for _ in 0..2 {
        let _ = net.forward(&x_warm, true); // make BN stats non-default
    }
    net.fuse_inference();
    let snapshot = net.weights();

    let x = Tensor::rand_uniform(&[4, 3, 16, 16], 0.0, 1.0, &mut rng);
    let _ = net.predict_classes(&x);
    let _ = net.eval_loss(&x, &Target::Classes(vec![0, 1, 2, 3]), &CrossEntropyLoss);
    let _ = net.infer(&x);
    let _ = net.forward_eval(&x);
    let samples: Vec<Tensor> = (0..70)
        .map(|_| Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng))
        .collect();
    let labels: Vec<usize> = (0..70).map(|i| i % 4).collect();
    let data = Dataset::new(samples, Labels::Classes(labels));
    let _ = evaluate_accuracy(&mut net, &data);

    assert_eq!(
        net.weights(),
        snapshot,
        "an eval path mutated weights or BN running statistics"
    );
}

#[test]
fn sharded_eval_matches_exclusive_eval_on_a_real_cnn() {
    let cfg = VisionConfig::new(3, 4, 16);
    let mut rng = StdRng::seed_from_u64(12);
    let mut net = build_vision_model(ModelKind::SimpleCnn, cfg, &mut rng);
    let x_warm = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
    let _ = net.forward(&x_warm, true);
    net.fuse_inference();

    let n = 85; // several EVAL_BATCH shards plus a ragged tail
    let samples: Vec<Tensor> = (0..n)
        .map(|_| Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng))
        .collect();
    let labels: Vec<usize> = (0..n).map(|i| (i * 7) % 4).collect();
    let data = Dataset::new(samples.clone(), Labels::Classes(labels.clone()));
    let sharded_acc = evaluate_accuracy(&mut net, &data);

    // exclusive-access reference, batch by batch
    let mut correct = 0usize;
    for (sample, &label) in samples.iter().zip(labels.iter()) {
        let batch = Tensor::stack(std::slice::from_ref(sample));
        if net.predict_classes(&batch)[0] == label {
            correct += 1;
        }
    }
    let expect = correct as f32 / n as f32;
    assert!(
        (sharded_acc - expect).abs() < 1e-6,
        "sharded accuracy {sharded_acc} vs exclusive {expect}"
    );
}
