//! Pins the allocation-free forward plan: after warm-up, `Network::infer`
//! must perform **zero** heap allocations on the calling thread for every
//! model in the zoo — including inside the composite blocks (inverted
//! residuals, squeeze-excite, fire modules, shuffle units), whose nested
//! Sequentials previously fell back to the allocating layer-at-a-time path.
//!
//! The pin uses a counting global allocator with a per-thread counter, so
//! concurrently running tests in this binary cannot perturb the count. The
//! inputs are deliberately small (batch 1, 16 px) so every conv/GEMM stays
//! under the kernel layer's parallel thresholds: pool fan-out would box its
//! task closures (a legitimate allocation that only exists on multi-core
//! hosts) and is not what this test is about.

use heteroswitch_repro::nn::models::{build_vision_model, ModelKind, VisionConfig};
use heteroswitch_repro::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting allocation events per thread.
struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the only added
// behaviour is bumping a thread-local counter, which cannot re-enter the
// allocator (`Cell<u64>` with const init performs no allocation).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller's layout contract is passed through to `System` as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        // SAFETY: same layout the caller vouched for, forwarded unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller's layout contract is passed through to `System` as-is.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        // SAFETY: same layout the caller vouched for, forwarded unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller's ptr/layout contract is passed through to `System`
    // as-is.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        // SAFETY: same ptr/layout the caller vouched for, forwarded
        // unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller's ptr/layout contract is passed through to `System`
    // as-is.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same ptr/layout the caller vouched for, forwarded
        // unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocation events on this thread while running `f`.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_COUNT.with(|c| c.get());
    let result = f();
    (ALLOC_COUNT.with(|c| c.get()) - before, result)
}

#[test]
fn warm_infer_performs_zero_allocations_across_the_model_zoo() {
    let cfg = VisionConfig::new(3, 6, 16);
    for kind in [
        ModelKind::SimpleCnn,
        ModelKind::MobileNetV3Small,
        ModelKind::ShuffleNetV2,
        ModelKind::SqueezeNet,
    ] {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = build_vision_model(kind, cfg, &mut rng);
        net.fuse_inference();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);

        // warm-up: sizes the arenas, scratch buffers and thread-local packs
        let expect = net.infer(&x).clone();
        let _ = net.infer(&x);

        let (allocs, sum) = count_allocs(|| net.infer(&x).as_slice().iter().sum::<f32>());
        assert_eq!(
            allocs, 0,
            "{kind:?}: warm Network::infer allocated {allocs} times"
        );
        assert!(
            (sum - expect.as_slice().iter().sum::<f32>()).abs() < 1e-5,
            "{kind:?}: counted pass diverged from warm-up output"
        );
    }
}

#[test]
fn warm_infer_stays_allocation_free_when_batch_returns_to_a_seen_size() {
    // alternating between two previously-seen shapes must not re-trigger
    // arena growth (Vec::resize never shrinks capacity). Both shapes stay
    // at batch 1 so the conv batch loop never fans out on multi-core hosts
    // (pool spawns box their closures — a legitimate allocation that is not
    // under test here); the alternation is spatial instead.
    let cfg = VisionConfig::new(3, 6, 16);
    let mut rng = StdRng::seed_from_u64(4);
    let mut net = build_vision_model(ModelKind::MobileNetV3Small, cfg, &mut rng);
    net.fuse_inference();
    let x1 = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
    let x2 = Tensor::rand_uniform(&[1, 3, 12, 12], 0.0, 1.0, &mut rng);
    for _ in 0..2 {
        let _ = net.infer(&x1);
        let _ = net.infer(&x2);
    }
    let (allocs, _) = count_allocs(|| {
        let _ = net.infer(&x1);
        let _ = net.infer(&x2);
    });
    assert_eq!(allocs, 0, "shape alternation re-allocated {allocs} times");
}
