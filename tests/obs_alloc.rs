//! Pins the zero-cost contract of the observability layer when tracing is
//! off: after warm-up, the disabled trace entry points (`span`, `span_at`,
//! `instant`) and the hot metric operations (`Counter::inc`,
//! `Gauge::set`, `Histogram::record`) must perform **zero** heap
//! allocations on the calling thread. This is the counting-allocator
//! harness from `tests/infer_alloc.rs`, pointed at `hs_obs`.
//!
//! The first `trace::enabled()` call reads `HS_TRACE` from the
//! environment (which allocates), and `Registry::counter`/`histogram`
//! lookups intern names into a map — both are paid once during warm-up,
//! outside the counted region, exactly as production callers hold their
//! handles across requests.

use hs_obs::metrics::Registry;
use hs_obs::trace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting allocation events per thread.
struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the only added
// behaviour is bumping a thread-local counter, which cannot re-enter the
// allocator (`Cell<u64>` with const init performs no allocation).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller's layout contract is passed through to `System` as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        // SAFETY: same layout the caller vouched for, forwarded unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller's layout contract is passed through to `System` as-is.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        // SAFETY: same layout the caller vouched for, forwarded unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller's ptr/layout contract is passed through to `System`
    // as-is.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        // SAFETY: same ptr/layout the caller vouched for, forwarded
        // unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller's ptr/layout contract is passed through to `System`
    // as-is.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same ptr/layout the caller vouched for, forwarded
        // unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocation events on this thread while running `f`.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_COUNT.with(|c| c.get());
    let result = f();
    (ALLOC_COUNT.with(|c| c.get()) - before, result)
}

#[test]
fn disabled_tracing_allocates_nothing() {
    let _guard = trace::test_guard();
    trace::set_enabled(false); // also settles the one-time env init

    let (allocs, _) = count_allocs(|| {
        for i in 0..1000u64 {
            let span = trace::span("disabled");
            span.set_payload(i);
            drop(span);
            trace::instant("disabled_instant", i);
            trace::span_at("disabled_at", i, i + 5, 0, i);
        }
    });
    assert_eq!(allocs, 0, "disabled trace path allocated {allocs} times");
}

#[test]
fn hot_metric_operations_allocate_nothing() {
    // Handles are resolved once, up front — the interning allocation is a
    // registration cost, not a per-record cost.
    let registry = Registry::new();
    let counter = registry.counter("served_total");
    let gauge = registry.gauge("queue_depth");
    let histogram = registry.histogram("latency_us");
    histogram.record(1); // touch every lazily-initialised piece once

    let (allocs, _) = count_allocs(|| {
        for i in 0..1000u64 {
            counter.inc();
            counter.add(3);
            gauge.set(i as i64);
            gauge.add(-1);
            histogram.record(i * 17 + 1);
        }
    });
    assert_eq!(allocs, 0, "hot metric path allocated {allocs} times");
    assert_eq!(counter.get(), 4000);
    assert_eq!(histogram.count(), 1001);
}
