//! Pins the acceptance contract for the tracing layer end-to-end: a traced
//! closed-loop serving run must produce a Chrome trace-event JSON that
//! passes [`hs_obs::export::validate_chrome_trace`] (the structural rules
//! Perfetto's importer enforces), and the `queue_wait`/`serve` children
//! must cover ≥ 95% of every `request` span's wall-clock — no unexplained
//! gaps inside a request's lifetime.
//!
//! This is the same span topology `exp_chaos --trace-out` exports; the
//! test exists so a refactor of the serve instrumentation cannot silently
//! break the artifact CI uploads.

use hs_bench::serving_load::closed_loop;
use hs_nn::{Linear, Network, Relu, Sequential};
use hs_obs::{export, trace};
use hs_serve::{BatchPolicy, ModelRegistry, Server, ServerConfig};
use hs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

const IN: usize = 16;
const CLIENTS: usize = 4;
const PER_CLIENT: usize = 25;

fn replica() -> Network {
    let mut rng = StdRng::seed_from_u64(11);
    Network::new(Sequential::new(vec![
        Box::new(Linear::new(IN, 24, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Linear::new(24, 4, &mut rng)),
    ]))
}

/// Runs a traced closed-loop load against a small batched server and
/// returns the trace snapshot (tracing is switched back off before
/// returning).
fn traced_serving_snapshot() -> trace::TraceSnapshot {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("m", &mut replica());
    let server = Server::start(
        Arc::clone(&registry),
        "m",
        replica,
        &[IN],
        ServerConfig::new(1, 256, BatchPolicy::new(CLIENTS, 500)),
    )
    .expect("server must start");
    let mut rng = StdRng::seed_from_u64(5);
    let sample = Tensor::rand_uniform(&[IN], 0.0, 1.0, &mut rng);

    trace::set_enabled(true);
    let outcome = closed_loop(&server.client(), CLIENTS, PER_CLIENT, &sample, None, None);
    let snap = trace::snapshot();
    trace::set_enabled(false);
    server.shutdown();
    assert_eq!(outcome.ok, CLIENTS * PER_CLIENT, "requests were lost");
    snap
}

#[test]
fn traced_serving_emits_a_perfetto_valid_chrome_trace() {
    let _guard = trace::test_guard();
    trace::reset();
    let snap = traced_serving_snapshot();
    assert_eq!(
        snap.total_dropped(),
        0,
        "ring dropped records under tiny load"
    );
    assert!(snap.total_records() > 0, "traced run captured nothing");

    let json = export::chrome_trace(&snap);
    let events = export::validate_chrome_trace(&json).expect("Chrome trace must validate");
    assert_eq!(
        events,
        snap.total_records(),
        "every record must become exactly one non-metadata event"
    );

    // The on-disk artifact is the same value, validated before writing.
    let path = std::env::temp_dir().join("hs-obs-trace-test.json");
    let written = export::write_chrome_trace(&path, &snap).expect("write must succeed");
    assert_eq!(written, events);
    let bytes = std::fs::read_to_string(&path).expect("trace file must exist");
    assert!(
        bytes.starts_with("{\"traceEvents\":["),
        "trace file must use the JSON-object flavour"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn request_children_cover_at_least_95_percent_of_request_wall_clock() {
    let _guard = trace::test_guard();
    trace::reset();
    let snap = traced_serving_snapshot();

    // `request` spans carry span_id = rid; `queue_wait` and `serve` carry
    // parent = rid. Sum child durations per request and compare.
    let mut requests: HashMap<u64, u64> = HashMap::new();
    let mut covered: HashMap<u64, u64> = HashMap::new();
    for r in snap.records() {
        if r.name == "request" {
            requests.insert(r.span_id, r.t_end_ns - r.t_start_ns);
        } else if matches!(r.name, "queue_wait" | "serve") {
            *covered.entry(r.parent).or_insert(0) += r.t_end_ns - r.t_start_ns;
        }
    }
    assert_eq!(
        requests.len(),
        CLIENTS * PER_CLIENT,
        "every completed request must have a request span"
    );
    for (rid, dur) in &requests {
        let child_ns = covered.get(rid).copied().unwrap_or(0);
        assert!(
            child_ns as f64 >= 0.95 * *dur as f64,
            "request {rid}: children cover {child_ns} of {dur} ns (< 95%)"
        );
    }
}
