//! Property-based tests over the core data structures and invariants:
//! tensor algebra, the blocked-GEMM kernel layer vs the naive reference,
//! Conv2d's GEMM path vs the seed scalar path, ISP pipeline range/geometry
//! guarantees, metric bounds, weight averaging and client partitioning.
//!
//! The build environment has no crates registry, so instead of `proptest`
//! these run each property over many seeded random cases drawn from the
//! workspace's own deterministic RNG — same spirit (randomised inputs,
//! shrink-free), fully reproducible.

use heteroswitch::{random_gamma, random_white_balance, AveragingMode, WeightAverager};
use hs_isp::{BayerPattern, IspConfig, RawImage};
use hs_metrics::{accuracy, average_precision, mean, population_variance, worst_case};
use hs_nn::{Conv2d, ConvAlgo, Layer};
use hs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases per property (mirrors the old proptest config).
const CASES: u64 = 64;

// ----------------------------------------------------------------------
// Tensor algebra
// ----------------------------------------------------------------------

/// Transposing twice is the identity.
#[test]
fn transpose_is_involutive() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = rng.gen_range(1usize..6);
        let cols = rng.gen_range(1usize..6);
        let t = Tensor::rand_uniform(&[rows, cols], -10.0, 10.0, &mut rng);
        assert_eq!(t.transpose().transpose(), t);
    }
}

/// Matrix multiplication by the identity is the identity map.
#[test]
fn matmul_identity_is_identity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let rows = rng.gen_range(1usize..6);
        let cols = rng.gen_range(1usize..6);
        let t = Tensor::rand_uniform(&[rows, cols], -10.0, 10.0, &mut rng);
        let out = t.matmul(&Tensor::eye(cols));
        for (a, b) in t.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}

/// Matmul distributes over addition: (A + B) C == A C + B C.
#[test]
fn matmul_distributes_over_addition() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let n = rng.gen_range(1usize..5);
        let a = Tensor::rand_uniform(&[n, n], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[n, n], -2.0, 2.0, &mut rng);
        let c = Tensor::rand_uniform(&[n, n], -2.0, 2.0, &mut rng);
        let left = a.add(&b).matmul(&c);
        let right = a.matmul(&c).add(&b.matmul(&c));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((l - r).abs() < 1e-3);
        }
    }
}

/// Softmax rows are valid probability distributions.
#[test]
fn softmax_rows_are_distributions() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let rows = rng.gen_range(1usize..5);
        let cols = rng.gen_range(1usize..8);
        let t = Tensor::rand_uniform(&[rows, cols], -20.0, 20.0, &mut rng);
        let s = t.softmax_rows();
        for i in 0..rows {
            let mut total = 0.0f32;
            for j in 0..cols {
                let v = s.at(&[i, j]);
                assert!((0.0..=1.0).contains(&v));
                total += v;
            }
            assert!((total - 1.0).abs() < 1e-4);
        }
    }
}

/// Reshape preserves every element and the element count.
#[test]
fn reshape_preserves_data() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let n = rng.gen_range(1usize..5);
        let m = rng.gen_range(1usize..5);
        let t = Tensor::rand_uniform(&[n, m], -1.0, 1.0, &mut rng);
        let r = t.reshape(&[m * n]);
        assert_eq!(r.len(), t.len());
        assert_eq!(r.as_slice(), t.as_slice());
    }
}

// ----------------------------------------------------------------------
// Blocked GEMM vs the naive reference kernel
// ----------------------------------------------------------------------

/// The blocked, SIMD-dispatched GEMM agrees with the seed's i-k-j reference
/// across random shapes, including dimensions that are not multiples of the
/// register-tile sizes (MR = 8, NR = 48) or the KC panel depth.
#[test]
fn blocked_gemm_matches_naive_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        // bias the draw towards tile-edge-straddling sizes
        let m = rng.gen_range(1usize..70);
        let k = rng.gen_range(1usize..300);
        let n = rng.gen_range(1usize..110);
        let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, &mut rng);
        let fast = a.matmul(&b);
        let reference = a.matmul_naive(&b);
        assert_eq!(fast.dims(), reference.dims());
        for (f, r) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert!(
                (f - r).abs() <= 1e-4 * r.abs().max(1.0),
                "gemm {m}x{k}x{n} diverged: {f} vs {r}"
            );
        }
    }
}

/// Shapes aligned exactly to the micro-kernel tile and panel boundaries
/// (and one element off either side) agree with the reference.
#[test]
fn blocked_gemm_matches_naive_on_boundary_shapes() {
    let mut rng = StdRng::seed_from_u64(91);
    for (m, k, n) in [
        (8usize, 256usize, 48usize),
        (7, 255, 47),
        (9, 257, 49),
        (16, 512, 96),
        (64, 64, 48),   // the direct-B small-m path, exact strips
        (65, 100, 100), // just past the small-m cutoff
        (1, 1, 1),
        (1, 300, 1),
        (70, 1, 70),
    ] {
        let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, &mut rng);
        let fast = a.matmul(&b);
        let reference = a.matmul_naive(&b);
        for (f, r) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert!(
                (f - r).abs() <= 1e-4 * r.abs().max(1.0),
                "gemm {m}x{k}x{n} diverged: {f} vs {r}"
            );
        }
    }
}

/// The transpose-fused products agree with their composed equivalents.
#[test]
fn matmul_nt_and_tn_match_composed_transpose() {
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(600 + seed);
        let m = rng.gen_range(1usize..20);
        let k = rng.gen_range(1usize..40);
        let n = rng.gen_range(1usize..20);
        let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, &mut rng);
        let bt = Tensor::rand_uniform(&[n, k], -2.0, 2.0, &mut rng);
        let nt = a.matmul_nt(&bt);
        let composed = a.matmul(&bt.transpose());
        for (f, r) in nt.as_slice().iter().zip(composed.as_slice()) {
            assert!((f - r).abs() <= 1e-4 * r.abs().max(1.0));
        }
        let at = Tensor::rand_uniform(&[k, m], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, &mut rng);
        let tn = at.matmul_tn(&b);
        let composed = at.transpose().matmul(&b);
        for (f, r) in tn.as_slice().iter().zip(composed.as_slice()) {
            assert!((f - r).abs() <= 1e-4 * r.abs().max(1.0));
        }
    }
}

// ----------------------------------------------------------------------
// Conv2d: GEMM path vs the seed scalar path
// ----------------------------------------------------------------------

/// The im2col+GEMM convolution agrees with the seed scalar implementation
/// across random grouped / depthwise / strided / padded configurations, in
/// both the forward values and every backward gradient.
#[test]
fn conv2d_gemm_path_matches_reference_across_configs() {
    for seed in 0..24 {
        let mut rng = StdRng::seed_from_u64(700 + seed);
        let groups = [1usize, 2, 4][rng.gen_range(0usize..3)];
        let cin = groups * rng.gen_range(1usize..4);
        let cout = if rng.gen_bool(0.25) && cin == groups {
            cin // depthwise
        } else {
            groups * rng.gen_range(1usize..4)
        };
        let kernel = [1usize, 3, 5][rng.gen_range(0usize..3)];
        let stride = rng.gen_range(1usize..3);
        let padding = rng.gen_range(0usize..=kernel / 2 + 1);
        let extent = kernel.max(3) + rng.gen_range(2usize..8);
        let (h, w) = (extent, extent + rng.gen_range(0usize..3));
        let batch = rng.gen_range(1usize..4);

        let mut conv = Conv2d::new(cin, cout, kernel, stride, padding, groups, &mut rng);
        let x = Tensor::rand_uniform(&[batch, cin, h, w], -1.0, 1.0, &mut rng);

        let fast = conv.forward(&x, true);
        let reference = conv.forward_reference(&x);
        assert_eq!(fast.dims(), reference.dims());
        for (f, r) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert!(
                (f - r).abs() <= 1e-4 * r.abs().max(1.0),
                "conv forward cin={cin} cout={cout} k={kernel} s={stride} p={padding} g={groups}: {f} vs {r}"
            );
        }

        let grad_out = Tensor::rand_uniform(fast.dims(), -1.0, 1.0, &mut rng);
        let grad_in = conv.backward(&grad_out);
        let (ref_gin, ref_gw, ref_gb) = conv.backward_reference(&x, &grad_out);
        for (f, r) in grad_in.as_slice().iter().zip(ref_gin.as_slice()) {
            assert!(
                (f - r).abs() <= 1e-3 * r.abs().max(1.0),
                "grad_in diverged: {f} vs {r}"
            );
        }
        let gw = conv.params_mut()[0].grad.clone();
        for (f, r) in gw.as_slice().iter().zip(ref_gw.as_slice()) {
            assert!(
                (f - r).abs() <= 1e-2 * r.abs().max(1.0),
                "grad_w diverged: {f} vs {r}"
            );
        }
        let gb = conv.params_mut()[1].grad.clone();
        for (f, r) in gb.as_slice().iter().zip(ref_gb.as_slice()) {
            assert!(
                (f - r).abs() <= 1e-2 * r.abs().max(1.0),
                "grad_b diverged: {f} vs {r}"
            );
        }
    }
}

/// Every convolution backend, forced through the dispatch override, agrees
/// with the seed scalar reference across random grouped / depthwise /
/// strided / padded configurations. Backends that cannot execute a geometry
/// (Winograd on strided or grouped convs, the direct kernel on dense convs)
/// must fall back to im2col rather than panic or diverge, so the sweep runs
/// every backend over every configuration.
#[test]
fn every_conv_backend_matches_reference_across_configs() {
    for seed in 0..16 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let groups = [1usize, 2, 4][rng.gen_range(0usize..3)];
        let cin = groups * rng.gen_range(1usize..4);
        let cout = if rng.gen_bool(0.3) && cin == groups {
            cin // depthwise
        } else {
            groups * rng.gen_range(1usize..4)
        };
        let kernel = [1usize, 3, 5][rng.gen_range(0usize..3)];
        let stride = rng.gen_range(1usize..3);
        let padding = rng.gen_range(0usize..=kernel / 2 + 1);
        let extent = kernel.max(3) + rng.gen_range(2usize..8);
        let (h, w) = (extent, extent + rng.gen_range(0usize..3));
        let batch = rng.gen_range(1usize..4);

        let mut conv = Conv2d::new(cin, cout, kernel, stride, padding, groups, &mut rng);
        let x = Tensor::rand_uniform(&[batch, cin, h, w], -1.0, 1.0, &mut rng);
        let reference = conv.forward_reference(&x);

        for algo in [
            ConvAlgo::Im2colGemm,
            ConvAlgo::Winograd,
            ConvAlgo::DirectDepthwise,
        ] {
            conv.force_algo(Some(algo));
            let got = conv.forward(&x, false);
            assert_eq!(got.dims(), reference.dims());
            for (g, r) in got.as_slice().iter().zip(reference.as_slice()) {
                // 1e-3 rel: the Winograd transforms re-associate the sums
                assert!(
                    (g - r).abs() <= 1e-3 * r.abs().max(1.0),
                    "{algo:?} cin={cin} cout={cout} k={kernel} s={stride} p={padding} g={groups}: {g} vs {r}"
                );
            }
        }
    }
}

/// The heuristic picks a backend that can actually execute the geometry,
/// and forcing an inapplicable backend falls back to im2col.
#[test]
fn conv_backend_selection_respects_geometry() {
    let mut rng = StdRng::seed_from_u64(77);
    // depthwise -> direct kernel
    let dw = Conv2d::depthwise(8, 3, 1, 1, &mut rng);
    assert_eq!(dw.planned_algo(), ConvAlgo::DirectDepthwise);
    // dense conv -> im2col (Winograd never wins on this ISA; see PERF.md)
    let dense = Conv2d::new(8, 8, 3, 1, 1, 1, &mut rng);
    assert_eq!(dense.planned_algo(), ConvAlgo::Im2colGemm);
    // forcing Winograd on a strided conv falls back to im2col
    let mut strided = Conv2d::new(8, 8, 3, 2, 1, 1, &mut rng);
    strided.force_algo(Some(ConvAlgo::Winograd));
    assert_eq!(strided.planned_algo(), ConvAlgo::Im2colGemm);
    // forcing the depthwise kernel on a dense conv falls back to im2col
    let mut dense2 = Conv2d::new(4, 8, 3, 1, 1, 1, &mut rng);
    dense2.force_algo(Some(ConvAlgo::DirectDepthwise));
    assert_eq!(dense2.planned_algo(), ConvAlgo::Im2colGemm);
    // forcing a valid backend sticks, and clearing restores the heuristic
    let mut dense3 = Conv2d::new(8, 8, 3, 1, 1, 1, &mut rng);
    dense3.force_algo(Some(ConvAlgo::Winograd));
    assert_eq!(dense3.planned_algo(), ConvAlgo::Winograd);
    dense3.force_algo(None);
    assert_eq!(dense3.planned_algo(), ConvAlgo::Im2colGemm);
}

// ----------------------------------------------------------------------
// ISP pipeline
// ----------------------------------------------------------------------

/// Every ISP configuration maps arbitrary RAW data into valid RGB in
/// [0, 1] with the sensor's geometry.
#[test]
fn isp_output_is_bounded_rgb() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(800 + seed);
        let size = rng.gen_range(2usize..10) * 2; // even sizes
        let data: Vec<f32> = (0..size * size).map(|_| rng.gen_range(0.0..1.0)).collect();
        let raw = RawImage::from_data(size, size, data, BayerPattern::Rggb);
        for cfg in [
            IspConfig::baseline(),
            IspConfig::option1(),
            IspConfig::option2(),
        ] {
            let rgb = cfg.process(&raw);
            assert_eq!((rgb.width, rgb.height, rgb.channels), (size, size, 3));
            assert!(rgb.data.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }
}

/// HeteroSwitch's random transformations keep image tensors in [0, 1]
/// and never change the shape.
#[test]
fn isp_transformations_preserve_range_and_shape() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let wb_degree = rng.gen_range(0.0f32..0.9);
        let gamma_degree = rng.gen_range(0.0f32..0.9);
        let img = Tensor::rand_uniform(&[3, 6, 6], 0.0, 1.0, &mut rng);
        let wb = random_white_balance(&img, wb_degree, &mut rng);
        let gamma = random_gamma(&wb, gamma_degree, &mut rng);
        assert_eq!(gamma.dims(), img.dims());
        assert!(gamma.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
    }
}

// ----------------------------------------------------------------------
// Metrics
// ----------------------------------------------------------------------

/// Accuracy lies in [0, 1] and equals 1 exactly for identical inputs.
#[test]
fn accuracy_bounds() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let len = rng.gen_range(1usize..50);
        let labels: Vec<usize> = (0..len).map(|_| rng.gen_range(0usize..5)).collect();
        let acc_same = accuracy(&labels, &labels);
        assert!((acc_same - 1.0).abs() < 1e-6);
        let shifted: Vec<usize> = labels.iter().map(|l| (l + 1) % 5).collect();
        let acc_diff = accuracy(&shifted, &labels);
        assert!((0.0..=1.0).contains(&acc_diff));
    }
}

/// Variance is non-negative and zero for constant vectors; the worst case
/// never exceeds the mean.
#[test]
fn fairness_metric_invariants() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1100 + seed);
        let len = rng.gen_range(1usize..20);
        let values: Vec<f32> = (0..len).map(|_| rng.gen_range(0.0f32..100.0)).collect();
        let var = population_variance(&values);
        assert!(var >= 0.0);
        assert!(worst_case(&values) <= mean(&values) + 1e-4);
        let constant = vec![values[0]; values.len()];
        assert!(population_variance(&constant) < 1e-6);
    }
}

/// Average precision is bounded in [0, 1] for arbitrary score vectors.
#[test]
fn average_precision_bounds() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1200 + seed);
        let len = rng.gen_range(1usize..12);
        let scores: Vec<f32> = (0..len).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let mask_seed = rng.gen_range(0u64..100);
        let relevant: Vec<bool> = scores
            .iter()
            .enumerate()
            .map(|(i, _)| (i as u64 + mask_seed).is_multiple_of(3))
            .collect();
        let ap = average_precision(&scores, &relevant);
        assert!((0.0..=1.0).contains(&ap));
    }
}

// ----------------------------------------------------------------------
// Weight averaging and partitioning
// ----------------------------------------------------------------------

/// The SWAD running average always stays within the per-coordinate
/// min/max envelope of everything it has seen.
#[test]
fn weight_average_stays_in_envelope() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1300 + seed);
        let num_updates = rng.gen_range(1usize..10);
        let initial: Vec<f32> = (0..3).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let updates: Vec<Vec<f32>> = (0..num_updates)
            .map(|_| (0..3).map(|_| rng.gen_range(-5.0f32..5.0)).collect())
            .collect();
        let mut averager = WeightAverager::new(AveragingMode::PerBatch, &initial);
        let mut lo = initial.clone();
        let mut hi = initial.clone();
        for update in &updates {
            averager.update(update);
            for i in 0..3 {
                lo[i] = lo[i].min(update[i]);
                hi[i] = hi[i].max(update[i]);
            }
        }
        for i in 0..3 {
            assert!(averager.average()[i] >= lo[i] - 1e-4);
            assert!(averager.average()[i] <= hi[i] + 1e-4);
        }
    }
}

/// Market-share client assignment always returns exactly the requested
/// number of clients and only valid device indices.
#[test]
fn share_assignment_is_complete() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1400 + seed);
        let num_devices = rng.gen_range(1usize..9);
        let shares: Vec<f32> = (0..num_devices)
            .map(|_| rng.gen_range(0.01f32..10.0))
            .collect();
        let num_clients = rng.gen_range(1usize..60);
        let assignment = hs_data::assign_clients_by_share(&shares, num_clients, seed);
        assert_eq!(assignment.len(), num_clients);
        assert!(assignment.iter().all(|&d| d < shares.len()));
    }
}
