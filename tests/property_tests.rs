//! Property-based tests (proptest) over the core data structures and
//! invariants: tensor algebra, ISP pipeline range/geometry guarantees,
//! metric bounds, weight averaging and client partitioning.

use heteroswitch::{random_gamma, random_white_balance, AveragingMode, WeightAverager};
use hs_isp::{BayerPattern, IspConfig, RawImage};
use hs_metrics::{accuracy, average_precision, mean, population_variance, worst_case};
use hs_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Tensor algebra
    // ------------------------------------------------------------------

    /// Transposing twice is the identity.
    #[test]
    fn transpose_is_involutive(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&[rows, cols], -10.0, 10.0, &mut rng);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    /// Matrix multiplication by the identity is the identity map.
    #[test]
    fn matmul_identity_is_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&[rows, cols], -10.0, 10.0, &mut rng);
        let out = t.matmul(&Tensor::eye(cols));
        for (a, b) in t.as_slice().iter().zip(out.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Matmul distributes over addition: (A + B) C == A C + B C.
    #[test]
    fn matmul_distributes_over_addition(n in 1usize..5, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&[n, n], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[n, n], -2.0, 2.0, &mut rng);
        let c = Tensor::rand_uniform(&[n, n], -2.0, 2.0, &mut rng);
        let left = a.add(&b).matmul(&c);
        let right = a.matmul(&c).add(&b.matmul(&c));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    /// Softmax rows are valid probability distributions.
    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..5, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&[rows, cols], -20.0, 20.0, &mut rng);
        let s = t.softmax_rows();
        for i in 0..rows {
            let mut total = 0.0f32;
            for j in 0..cols {
                let v = s.at(&[i, j]);
                prop_assert!((0.0..=1.0).contains(&v));
                total += v;
            }
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
    }

    /// Reshape preserves every element and the element count.
    #[test]
    fn reshape_preserves_data(n in 1usize..5, m in 1usize..5, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&[n, m], -1.0, 1.0, &mut rng);
        let r = t.reshape(&[m * n]);
        prop_assert_eq!(r.len(), t.len());
        prop_assert_eq!(r.as_slice(), t.as_slice());
    }

    // ------------------------------------------------------------------
    // ISP pipeline
    // ------------------------------------------------------------------

    /// Every ISP configuration maps arbitrary RAW data into valid RGB in
    /// [0, 1] with the sensor's geometry.
    #[test]
    fn isp_output_is_bounded_rgb(seed in 0u64..500, size in 2usize..10) {
        let size = size * 2; // even sizes
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..size * size).map(|_| {
            use rand::Rng;
            rng.gen_range(0.0..1.0)
        }).collect();
        let raw = RawImage::from_data(size, size, data, BayerPattern::Rggb);
        for cfg in [IspConfig::baseline(), IspConfig::option1(), IspConfig::option2()] {
            let rgb = cfg.process(&raw);
            prop_assert_eq!((rgb.width, rgb.height, rgb.channels), (size, size, 3));
            prop_assert!(rgb.data.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    /// HeteroSwitch's random transformations keep image tensors in [0, 1]
    /// and never change the shape.
    #[test]
    fn isp_transformations_preserve_range_and_shape(
        seed in 0u64..500,
        wb_degree in 0.0f32..0.9,
        gamma_degree in 0.0f32..0.9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let img = Tensor::rand_uniform(&[3, 6, 6], 0.0, 1.0, &mut rng);
        let wb = random_white_balance(&img, wb_degree, &mut rng);
        let gamma = random_gamma(&wb, gamma_degree, &mut rng);
        prop_assert_eq!(gamma.dims(), img.dims());
        prop_assert!(gamma.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Accuracy lies in [0, 1] and equals 1 exactly for identical inputs.
    #[test]
    fn accuracy_bounds(labels in prop::collection::vec(0usize..5, 1..50)) {
        let acc_same = accuracy(&labels, &labels);
        prop_assert!((acc_same - 1.0).abs() < 1e-6);
        let shifted: Vec<usize> = labels.iter().map(|l| (l + 1) % 5).collect();
        let acc_diff = accuracy(&shifted, &labels);
        prop_assert!((0.0..=1.0).contains(&acc_diff));
    }

    /// Variance is non-negative and zero for constant vectors; the worst case
    /// never exceeds the mean.
    #[test]
    fn fairness_metric_invariants(values in prop::collection::vec(0.0f32..100.0, 1..20)) {
        let var = population_variance(&values);
        prop_assert!(var >= 0.0);
        prop_assert!(worst_case(&values) <= mean(&values) + 1e-4);
        let constant = vec![values[0]; values.len()];
        prop_assert!(population_variance(&constant) < 1e-6);
    }

    /// Average precision is bounded in [0, 1] for arbitrary score vectors.
    #[test]
    fn average_precision_bounds(
        scores in prop::collection::vec(-5.0f32..5.0, 1..12),
        mask_seed in 0u64..100,
    ) {
        let relevant: Vec<bool> = scores
            .iter()
            .enumerate()
            .map(|(i, _)| (i as u64 + mask_seed) % 3 == 0)
            .collect();
        let ap = average_precision(&scores, &relevant);
        prop_assert!((0.0..=1.0).contains(&ap));
    }

    // ------------------------------------------------------------------
    // Weight averaging and partitioning
    // ------------------------------------------------------------------

    /// The SWAD running average always stays within the per-coordinate
    /// min/max envelope of everything it has seen.
    #[test]
    fn weight_average_stays_in_envelope(
        updates in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 3), 1..10),
        initial in prop::collection::vec(-5.0f32..5.0, 3),
    ) {
        let mut averager = WeightAverager::new(AveragingMode::PerBatch, &initial);
        let mut lo = initial.clone();
        let mut hi = initial.clone();
        for update in &updates {
            averager.update(update);
            for i in 0..3 {
                lo[i] = lo[i].min(update[i]);
                hi[i] = hi[i].max(update[i]);
            }
        }
        for i in 0..3 {
            prop_assert!(averager.average()[i] >= lo[i] - 1e-4);
            prop_assert!(averager.average()[i] <= hi[i] + 1e-4);
        }
    }

    /// Market-share client assignment always returns exactly the requested
    /// number of clients and only valid device indices.
    #[test]
    fn share_assignment_is_complete(
        shares in prop::collection::vec(0.01f32..10.0, 1..9),
        num_clients in 1usize..60,
        seed in 0u64..100,
    ) {
        let assignment = hs_data::assign_clients_by_share(&shares, num_clients, seed);
        prop_assert_eq!(assignment.len(), num_clients);
        prop_assert!(assignment.iter().all(|&d| d < shares.len()));
    }
}
