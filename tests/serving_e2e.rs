//! The end-to-end serving demo: a federated-learning run publishes global
//! model checkpoints into a registry via the `checkpoint_every` hook,
//! `hs-serve` loads the model from the registry, and a 4-client closed-loop
//! load drives the dynamically batched server — responses must match direct
//! inference with the published global model, batching must actually
//! coalesce, and mid-serving publications must hot-swap in.
//!
//! (The companion throughput claim — dynamic batching ≥ 2× the batch=1
//! configuration at the same p99 bound — is timed and CI-gated in
//! `crates/bench/benches/serving.rs`, not asserted here where debug-build
//! timing would make it flaky.)

use hs_data::{Dataset, Labels};
use hs_fl::{AggregationMethod, ClientData, FedAvgTrainer, FlConfig, FlSimulation, LossKind};
use hs_nn::{Linear, Network, Relu, Sequential};
use hs_serve::{BatchPolicy, ModelRegistry, Server, ServerConfig};
use hs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const IN: usize = 4;
const CLASSES: usize = 3;

fn replica() -> Network {
    let mut rng = StdRng::seed_from_u64(0);
    Network::new(Sequential::new(vec![
        Box::new(Linear::new(IN, 16, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Linear::new(16, CLASSES, &mut rng)),
    ]))
}

fn clients(n: usize, samples: usize) -> Vec<ClientData> {
    (0..n)
        .map(|id| {
            let mut rng = StdRng::seed_from_u64(id as u64 + 77);
            let x: Vec<Tensor> = (0..samples)
                .map(|i| {
                    let mut t = Tensor::rand_uniform(&[IN], -0.2, 0.2, &mut rng);
                    t.as_mut_slice()[i % CLASSES] += 1.0;
                    t
                })
                .collect();
            ClientData {
                id,
                device: format!("dev-{}", id % 2),
                data: Dataset::new(
                    x,
                    Labels::Classes((0..samples).map(|i| i % CLASSES).collect()),
                ),
            }
        })
        .collect()
}

#[test]
fn fl_checkpoints_feed_a_live_dynamically_batched_server() {
    // --- train: an FL run that publishes every 2 rounds into the registry
    let registry = Arc::new(ModelRegistry::new());
    let mut config = FlConfig::tiny();
    config.rounds = 6;
    config.num_clients = 4;
    config.clients_per_round = 2;
    let mut sim = FlSimulation::new(
        config,
        clients(4, 9),
        Box::new(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let _ = &mut rng; // deterministic replica independent of seed
            replica()
        }),
        Box::new(FedAvgTrainer::new(LossKind::CrossEntropy)),
        AggregationMethod::FedAvg,
    );
    {
        let registry = Arc::clone(&registry);
        sim.run_with_checkpoints(2, move |_rounds_done, model| {
            registry.publish("global", model);
        });
    }
    assert_eq!(
        registry.versions("global").len(),
        3,
        "6 rounds at checkpoint_every=2 publish 3 versions"
    );

    // --- serve: load the latest global model from the registry
    let server = Server::start(
        Arc::clone(&registry),
        "global",
        replica,
        &[IN],
        ServerConfig::new(1, 256, BatchPolicy::new(8, 2_000)),
    )
    .unwrap();

    let latest_version = registry.latest_version("global").unwrap();

    // --- load: 4 closed-loop clients, each matching its responses against
    // its own direct-inference reference replica, sample by sample
    let global_weights = sim.global_model().weights();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let client = server.client();
            let mut reference = {
                let mut net = replica();
                net.set_weights(&global_weights);
                net
            };
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(500 + t);
                for i in 0..40 {
                    let x = Tensor::rand_uniform(&[IN], -1.0, 1.0, &mut rng);
                    let response = client.infer(x.clone(), None).unwrap();
                    let expect = reference.infer(&x.reshape(&[1, IN])).clone();
                    assert_eq!(response.logits.len(), CLASSES);
                    for (a, b) in response.logits.iter().zip(expect.as_slice()) {
                        assert!(
                            (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                            "client {t} request {i}: served {a} vs direct {b}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let metrics = server.metrics();
    assert_eq!(metrics.completed, 160);
    assert_eq!(metrics.rejected + metrics.expired, 0);
    assert!(
        metrics.mean_batch > 1.0,
        "4 concurrent closed-loop clients must coalesce into batches, histogram {:?}",
        metrics.batch_histogram
    );
    assert!(metrics.p99_us >= metrics.p50_us);

    // --- hot-swap mid-serving: publish an improved model and verify the
    // server picks it up without restarting
    let x = Tensor::ones(&[IN]);
    let before = server.client().infer(x.clone(), None).unwrap();
    assert_eq!(before.model_version, latest_version);
    let mut improved = sim.global_model();
    let mut w = improved.weights();
    for v in w.iter_mut() {
        *v *= 0.5;
    }
    improved.set_weights(&w);
    let new_version = registry.publish("global", &mut improved);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let r = server.client().infer(x.clone(), None).unwrap();
        if r.model_version == new_version {
            let expect = improved.infer(&x.reshape(&[1, IN])).clone();
            for (a, b) in r.logits.iter().zip(expect.as_slice()) {
                assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0));
            }
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never swapped to the mid-serving publication"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    server.shutdown();
}
