//! Offline stand-in for `criterion`.
//!
//! The workspace builds without crates-registry access, so this crate
//! implements the subset of criterion's API that the benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`],
//! [`criterion_main!`] — on top of a simple wall-clock harness:
//!
//! * every benchmark is warmed up, then timed over `sample_size` samples,
//!   each sample batching enough iterations to exceed a minimum duration;
//! * the median / min / max per-iteration times are reported in a
//!   criterion-like `time: [low median high]` line;
//! * `--test` (the Cargo bench smoke-mode flag) runs each benchmark exactly
//!   once and reports `ok`, so CI can validate benches cheaply;
//! * positional CLI arguments act as substring filters on benchmark names.
//!
//! Other criterion CLI flags (`--save-baseline`, `--noplot`, ...) are
//! accepted and ignored.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum duration of one timed sample; iterations are batched up to this.
const MIN_SAMPLE: Duration = Duration::from_millis(8);
/// Warm-up budget per benchmark.
const WARMUP: Duration = Duration::from_millis(300);

/// The benchmark manager: configuration plus name filtering.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                // flags with a value we must consume and ignore
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" | "--profile-time" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => filters.push(s.to_string()),
            }
        }
        Criterion {
            sample_size: 20,
            test_mode,
            filters,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Configures the warm-up time. Accepted for API compatibility; the
    /// stand-in keeps its fixed warm-up budget.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Configures the measurement time. Accepted for API compatibility.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one benchmark if it passes the CLI name filter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| name.contains(p.as_str())) {
            return self;
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            bencher.report(name);
        }
        self
    }
}

/// Times a single benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and discover how many iterations fill MIN_SAMPLE.
        let mut batch = 1usize;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            if dt >= MIN_SAMPLE {
                break;
            }
            if warm_start.elapsed() >= WARMUP {
                // routine is fast; scale the batch from the observed rate
                let per_iter = dt.as_secs_f64() / batch as f64;
                if per_iter > 0.0 {
                    batch = ((MIN_SAMPLE.as_secs_f64() / per_iter).ceil() as usize).max(batch);
                }
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        println!(
            "{name:<44} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's two macro
/// forms (`name/config/targets` and positional).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
