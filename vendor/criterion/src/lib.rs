//! Offline stand-in for `criterion`.
//!
//! The workspace builds without crates-registry access, so this crate
//! implements the subset of criterion's API that the benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`],
//! [`criterion_main!`] — on top of a simple wall-clock harness:
//!
//! * every benchmark is warmed up, then timed over `sample_size` samples,
//!   each sample batching enough iterations to exceed a minimum duration;
//! * the median / min / max per-iteration times are reported in a
//!   criterion-like `time: [low median high]` line;
//! * `--test` (the Cargo bench smoke-mode flag) runs each benchmark exactly
//!   once and reports `ok`, so CI can validate benches cheaply;
//! * positional CLI arguments act as substring filters on benchmark names;
//! * every timed benchmark is additionally recorded to a JSON results file
//!   (`<target>/bench-results.json`, overridable via `HS_BENCH_JSON`),
//!   merged by name across bench binaries, so CI can archive numbers and
//!   fail on regressions against a checked-in baseline (see the
//!   `bench_check` binary in `hs-bench`).
//!
//! Other criterion CLI flags (`--save-baseline`, `--noplot`, ...) are
//! accepted and ignored.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One timed benchmark's summary, as written to the JSON results file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (e.g. `nn/matmul_256x256x256`).
    pub name: String,
    /// Median per-iteration time in nanoseconds.
    ///
    /// Baseline-file entries with [`BenchRecord::ratio_vs`] set reinterpret
    /// this field as the dimensionless baseline ratio
    /// `median(name) / median(ratio_vs)` instead — wall-clock-free, so the
    /// regression gate survives moving between machines.
    pub median_ns: f64,
    /// Fastest sample in nanoseconds.
    pub low_ns: f64,
    /// Slowest sample in nanoseconds.
    pub high_ns: f64,
    /// Baseline-file only: the reference bench this entry is a ratio
    /// against (e.g. the `*_naive` or `*_unfused` twin). Never set on
    /// measured results.
    pub ratio_vs: Option<String>,
}

impl serde::json::ToJson for BenchRecord {
    fn to_json(&self) -> serde::json::JsonValue {
        use serde::json::{JsonValue, ToJson};
        let mut pairs = vec![
            ("name", ToJson::to_json(&self.name)),
            ("median_ns", ToJson::to_json(&self.median_ns)),
            ("low_ns", ToJson::to_json(&self.low_ns)),
            ("high_ns", ToJson::to_json(&self.high_ns)),
        ];
        if let Some(r) = &self.ratio_vs {
            pairs.push(("ratio_vs", ToJson::to_json(r)));
        }
        JsonValue::obj(pairs)
    }
}

/// Resolves the JSON results path: `HS_BENCH_JSON` if set, else
/// `bench-results.json` inside the nearest `target/` directory above the
/// current working directory (cargo runs bench binaries from the package
/// root, which for workspace members is not where `target/` lives).
pub fn results_path() -> PathBuf {
    if let Ok(p) = std::env::var("HS_BENCH_JSON") {
        return PathBuf::from(p);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for dir in cwd.ancestors() {
        let target = dir.join("target");
        if target.is_dir() {
            return target.join("bench-results.json");
        }
    }
    cwd.join("bench-results.json")
}

/// Parses a results/baseline JSON file produced by [`write_results`]. The
/// scanner only understands this crate's own output format (flat records
/// with `name`/`median_ns`/`low_ns`/`high_ns` fields), which is all the
/// regression tooling needs.
pub fn parse_results(text: &str) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find("{\"name\":\"") {
        rest = &rest[start + 9..];
        let Some(name_end) = rest.find('"') else {
            break;
        };
        let name = rest[..name_end].to_string();
        let Some(entry_end) = rest.find('}') else {
            break;
        };
        let entry = &rest[name_end..entry_end];
        let field = |key: &str| -> Option<f64> {
            let pat = format!("\"{key}\":");
            let at = entry.find(&pat)? + pat.len();
            let tail = &entry[at..];
            let end = tail
                .find(|c: char| {
                    c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
                })
                .unwrap_or(tail.len());
            tail[..end].parse().ok()
        };
        let ratio_vs = entry.find("\"ratio_vs\":\"").and_then(|at| {
            let tail = &entry[at + 12..];
            tail.find('"').map(|end| tail[..end].to_string())
        });
        if let (Some(median_ns), Some(low_ns), Some(high_ns)) =
            (field("median_ns"), field("low_ns"), field("high_ns"))
        {
            out.push(BenchRecord {
                name,
                median_ns,
                low_ns,
                high_ns,
                ratio_vs,
            });
        }
        rest = &rest[entry_end..];
    }
    out
}

/// Merges `new` records into the results file at `path` (existing entries
/// with the same name are replaced, others kept, so several bench binaries
/// accumulate into one file) and writes it back as JSON.
pub fn write_results(path: &PathBuf, new: &[BenchRecord]) -> std::io::Result<()> {
    let mut merged = std::fs::read_to_string(path)
        .map(|t| parse_results(&t))
        .unwrap_or_default();
    for record in new {
        match merged.iter_mut().find(|r| r.name == record.name) {
            Some(existing) => *existing = record.clone(),
            None => merged.push(record.clone()),
        }
    }
    use serde::json::{JsonValue, ToJson};
    let doc = JsonValue::obj(vec![("benches", ToJson::to_json(&merged))]);
    serde::json::write_file(path, &doc)
}

/// Minimum duration of one timed sample; iterations are batched up to this.
const MIN_SAMPLE: Duration = Duration::from_millis(8);
/// Warm-up budget per benchmark.
const WARMUP: Duration = Duration::from_millis(300);

/// The benchmark manager: configuration plus name filtering.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filters: Vec<String>,
    results: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                // flags with a value we must consume and ignore
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" | "--profile-time" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => filters.push(s.to_string()),
            }
        }
        Criterion {
            sample_size: 20,
            test_mode,
            filters,
            results: Vec::new(),
        }
    }
}

impl Drop for Criterion {
    /// Persists the timed results to the JSON results file when the group
    /// finishes (merged by name, so every bench binary of a run accumulates
    /// into one artifact).
    fn drop(&mut self) {
        if self.results.is_empty() {
            return;
        }
        let path = results_path();
        if let Err(err) = write_results(&path, &self.results) {
            eprintln!(
                "warning: could not write bench results to {}: {err}",
                path.display()
            );
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Configures the warm-up time. Accepted for API compatibility; the
    /// stand-in keeps its fixed warm-up budget.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Configures the measurement time. Accepted for API compatibility.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one benchmark if it passes the CLI name filter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| name.contains(p.as_str())) {
            return self;
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            if let Some(record) = bencher.record(name) {
                self.results.push(record);
            }
            bencher.report(name);
        }
        self
    }
}

/// Times a single benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and discover how many iterations fill MIN_SAMPLE.
        let mut batch = 1usize;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            if dt >= MIN_SAMPLE {
                break;
            }
            if warm_start.elapsed() >= WARMUP {
                // routine is fast; scale the batch from the observed rate
                let per_iter = dt.as_secs_f64() / batch as f64;
                if per_iter > 0.0 {
                    batch = ((MIN_SAMPLE.as_secs_f64() / per_iter).ceil() as usize).max(batch);
                }
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }

    /// Sorted (low, median, high) per-iteration seconds, if any samples ran.
    fn stats(&self) -> Option<(f64, f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        // total_cmp: a NaN sample (e.g. a zero-duration clock artefact fed
        // through a ratio) must not panic the stats pass
        sorted.sort_by(f64::total_cmp);
        Some((
            sorted[0],
            sorted[sorted.len() / 2],
            sorted[sorted.len() - 1],
        ))
    }

    /// Builds the JSON record for this benchmark's samples.
    fn record(&self, name: &str) -> Option<BenchRecord> {
        let (lo, median, hi) = self.stats()?;
        Some(BenchRecord {
            name: name.to_string(),
            median_ns: median * 1e9,
            low_ns: lo * 1e9,
            high_ns: hi * 1e9,
            ratio_vs: None,
        })
    }

    fn report(&self, name: &str) {
        let Some((lo, median, hi)) = self.stats() else {
            println!("{name:<44} (no samples)");
            return;
        };
        println!(
            "{name:<44} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's two macro
/// forms (`name/config/targets` and positional).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, median: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            median_ns: median,
            low_ns: median * 0.9,
            high_ns: median * 1.1,
            ratio_vs: None,
        }
    }

    #[test]
    fn ratio_entries_round_trip() {
        let path = std::env::temp_dir().join("hs_criterion_ratio_test/results.json");
        let _ = std::fs::remove_file(&path);
        let mut entry = rec("fused", 0.37);
        entry.ratio_vs = Some("unfused".to_string());
        write_results(&path, &[entry.clone()]).unwrap();
        let parsed = parse_results(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(parsed, vec![entry]);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn results_round_trip_through_json() {
        let path = std::env::temp_dir().join("hs_criterion_test/results.json");
        let _ = std::fs::remove_file(&path);
        write_results(&path, &[rec("a/b", 1234.5), rec("c", 7.0)]).unwrap();
        let parsed = parse_results(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(parsed, vec![rec("a/b", 1234.5), rec("c", 7.0)]);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn write_results_merges_by_name() {
        let path = std::env::temp_dir().join("hs_criterion_merge_test/results.json");
        let _ = std::fs::remove_file(&path);
        write_results(&path, &[rec("keep", 10.0), rec("update", 20.0)]).unwrap();
        write_results(&path, &[rec("update", 30.0), rec("new", 40.0)]).unwrap();
        let parsed = parse_results(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(
            parsed,
            vec![rec("keep", 10.0), rec("update", 30.0), rec("new", 40.0)]
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn parser_ignores_garbage() {
        assert!(parse_results("").is_empty());
        assert!(parse_results("{\"benches\":[]}").is_empty());
        assert!(parse_results("not json at all").is_empty());
    }
}
