//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the external `rand` dependency is replaced by this local
//! implementation of exactly the API subset the workspace uses:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator (xoshiro256++
//!   seeded through SplitMix64, *not* the ChaCha12 generator upstream uses;
//!   streams differ from upstream but are stable across runs and platforms),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive ranges over
//!   the numeric types the workspace draws), [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is `no_std`-free plain Rust with no dependencies. If the real
//! `rand` ever becomes available, deleting this directory and pointing the
//! workspace manifest at crates.io restores upstream behaviour (with
//! different random streams).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can instantiate themselves from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core sampling interface: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`[0, 1)` for floats, the full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        (f64::sample(self)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard-distribution sampling for a concrete type.
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) with full f32 mantissa precision
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types [`Rng::gen_range`] can draw uniformly.
///
/// Mirroring upstream rand, the range impls below are generic over one
/// `T: SampleUniform` so type inference unifies the range's element type
/// with the call site's expected type.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Unbiased integer draw from `[0, bound)` (Lemire's multiply-shift with
/// rejection).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = (rng.next_u64() as u128) * (bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit = <$t as Standard>::sample(rng);
                let v = lo + unit * (hi - lo);
                // guard against rounding up to the excluded endpoint
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Small, fast and statistically solid for simulation workloads. Note
    /// the streams differ from upstream `rand::rngs::StdRng` (ChaCha12);
    /// determinism holds per seed within this workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen reference, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<f32>() == b.gen::<f32>()).count();
        assert!(same < 4);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.25f32..0.75);
            assert!((-0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..1_000 {
            match rng.gen_range(0..=3) {
                0 => hit_lo = true,
                3 => hit_hi = true,
                _ => {}
            }
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7_500..8_500).contains(&hits));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
