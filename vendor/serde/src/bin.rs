//! A minimal little-endian binary writer/reader backing the serde stand-in.
//!
//! The checkpoint format in `hs-nn` (and anything else that needs a
//! byte-stable on-disk representation) serialises through these two types
//! instead of hand-rolling `to_le_bytes` plumbing at every call site. The
//! encoding is deliberately primitive — fixed-width little-endian integers,
//! raw `f32` bit patterns, length-prefixed strings — so the same bytes come
//! out of every build on every platform and a header can be pinned by a
//! golden test.
//!
//! Swapping this directory for the crates.io `serde` ecosystem maps these
//! call sites onto `bincode` (or any other fixed-layout format) without
//! touching the framing logic above them.

use std::fmt;

/// An error raised by [`ByteReader`] when the input ends (or a length
/// prefix points) before the requested value: the file is truncated or not
/// in this format at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruncatedInput {
    /// What the reader was trying to decode.
    pub expected: &'static str,
    /// Byte offset at which the input ran out.
    pub offset: usize,
}

impl fmt::Display for TruncatedInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "input truncated at byte {} while reading {}",
            self.offset, self.expected
        )
    }
}

impl std::error::Error for TruncatedInput {}

/// Appends little-endian primitives to a growing byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` as its little-endian bit pattern (bit-exact, NaN
    /// payloads included).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a whole `f32` slice as consecutive little-endian bit patterns.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Writes a string as a `u32` byte-length prefix followed by UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.put_bytes(s.as_bytes());
    }
}

/// Decodes little-endian primitives from a byte slice, tracking the read
/// offset and failing cleanly on truncation.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    offset: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, offset: 0 }
    }

    /// Current read offset in bytes.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.offset
    }

    fn take(&mut self, n: usize, expected: &'static str) -> Result<&'a [u8], TruncatedInput> {
        if self.remaining() < n {
            return Err(TruncatedInput {
                expected,
                offset: self.offset,
            });
        }
        let slice = &self.data[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(
        &mut self,
        n: usize,
        expected: &'static str,
    ) -> Result<&'a [u8], TruncatedInput> {
        self.take(n, expected)
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, expected: &'static str) -> Result<u32, TruncatedInput> {
        let b = self.take(4, expected)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, expected: &'static str) -> Result<u64, TruncatedInput> {
        let b = self.take(8, expected)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f32` from its little-endian bit pattern.
    pub fn get_f32(&mut self, expected: &'static str) -> Result<f32, TruncatedInput> {
        let b = self.take(4, expected)?;
        Ok(f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
    }

    /// Reads `n` consecutive `f32` bit patterns into a vector.
    pub fn get_f32_vec(
        &mut self,
        n: usize,
        expected: &'static str,
    ) -> Result<Vec<f32>, TruncatedInput> {
        let bytes = self.take(
            n.checked_mul(4).ok_or(TruncatedInput {
                expected,
                offset: self.offset,
            })?,
            expected,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
            .collect())
    }

    /// Reads a `u32`-length-prefixed UTF-8 string (invalid UTF-8 is replaced
    /// lossily — the consumer treats names as diagnostics, not keys).
    pub fn get_str(&mut self, expected: &'static str) -> Result<String, TruncatedInput> {
        let len = self.get_u32(expected)? as usize;
        let bytes = self.take(len, expected)?;
        Ok(String::from_utf8_lossy(bytes).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"MAGIC");
        w.put_u32(7);
        w.put_u64(u64::MAX - 3);
        w.put_f32(-1.5);
        w.put_f32_slice(&[0.0, f32::INFINITY, 3.25]);
        w.put_str("running_mean");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_bytes(5, "magic").unwrap(), b"MAGIC");
        assert_eq!(r.get_u32("v").unwrap(), 7);
        assert_eq!(r.get_u64("v").unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32("v").unwrap(), -1.5);
        assert_eq!(
            r.get_f32_vec(3, "v").unwrap(),
            vec![0.0, f32::INFINITY, 3.25]
        );
        assert_eq!(r.get_str("name").unwrap(), "running_mean");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn nan_bit_patterns_survive_byte_exactly() {
        let weird = f32::from_bits(0x7fc0_1234); // NaN with payload
        let mut w = ByteWriter::new();
        w.put_f32(weird);
        let bytes = w.into_bytes();
        let got = ByteReader::new(&bytes).get_f32("nan").unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncation_reports_offset_and_context() {
        let mut w = ByteWriter::new();
        w.put_u32(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let _ = r.get_u32("header").unwrap();
        let err = r.get_u64("weight count").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("weight count"));
    }

    #[test]
    fn string_length_beyond_input_is_truncation_not_panic() {
        let mut w = ByteWriter::new();
        w.put_u32(1000); // length prefix far beyond the data
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str("name").is_err());
    }

    #[test]
    fn encoding_is_little_endian_and_stable() {
        let mut w = ByteWriter::new();
        w.put_u32(0x0102_0304);
        w.put_f32(1.0);
        assert_eq!(
            w.into_bytes(),
            vec![0x04, 0x03, 0x02, 0x01, 0x00, 0x00, 0x80, 0x3f]
        );
    }
}
