//! A minimal JSON writer backing the serde stand-in.
//!
//! The derive macros in this offline stand-in still expand to nothing (see
//! the crate docs), but result types that need to reach disk — round
//! statistics, degradation matrices, bench results — implement [`ToJson`]
//! explicitly and serialise through [`JsonValue`]. The value model is the
//! standard JSON one; rendering escapes strings per RFC 8259 and emits
//! numbers via Rust's shortest-roundtrip float formatting.
//!
//! Swapping the directory for real `serde` + `serde_json` keeps these call
//! sites mechanical to port: `to_json()` becomes `serde_json::to_value`.

use std::io::Write;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (non-finite floats render as `null`, as
    /// `serde_json` does by default).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    // integral values print without a trailing ".0", like
                    // serde_json's integer types
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Types that can serialise themselves to a [`JsonValue`].
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> JsonValue;
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

macro_rules! num_to_json {
    ($($t:ty),+) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Num(*self as f64)
            }
        })+
    };
}
num_to_json!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

/// Renders `value` to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Writes `value` as JSON to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_file<T: ToJson + ?Sized>(path: &std::path::Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_string(value).as_bytes())?;
    file.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_strings() {
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&42usize), "42");
        assert_eq!(to_string(&1.5f32), "1.5");
        assert_eq!(to_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::obj(vec![
            ("name", JsonValue::Str("round".into())),
            ("values", vec![1.0f32, 2.5].to_json()),
            ("missing", Option::<usize>::None.to_json()),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"round","values":[1,2.5],"missing":null}"#
        );
    }

    #[test]
    fn write_file_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("hs_serde_json_test");
        let path = dir.join("nested/out.json");
        write_file(&path, &vec![1usize, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.trim(), "[1,2,3]");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
