//! Offline stand-in for `serde`.
//!
//! The workspace's build environment has no crates-registry access, so this
//! crate keeps the `#[derive(Serialize, Deserialize)]` annotations across the
//! workspace compiling without pulling in real serde. [`Serialize`] and
//! [`Deserialize`] are marker traits with blanket implementations, and the
//! derive macros (re-exported from the local `serde_derive` proc-macro crate)
//! expand to nothing.
//!
//! The marker derives still expand to nothing, but the [`json`] module
//! provides a real (minimal) JSON writer, and `#[derive(serde::ToJson)]`
//! (re-exported from the local `serde_derive`) emits a field-by-field
//! [`json::ToJson`] impl for plain structs with named fields — so result
//! types that must reach disk (round statistics, degradation matrices,
//! bench results) serialise without hand-written impls. Swapping this
//! directory for the crates.io `serde` (+`serde_json`) restores full
//! derive-driven functionality without touching any annotated type.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bin;
pub mod json;

pub use serde_derive::{Deserialize, Serialize, ToJson};

/// Marker for types that declare themselves serialisable.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that declare themselves deserialisable.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
