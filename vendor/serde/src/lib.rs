//! Offline stand-in for `serde`.
//!
//! The workspace's build environment has no crates-registry access, so this
//! crate keeps the `#[derive(Serialize, Deserialize)]` annotations across the
//! workspace compiling without pulling in real serde. [`Serialize`] and
//! [`Deserialize`] are marker traits with blanket implementations, and the
//! derive macros (re-exported from the local `serde_derive` proc-macro crate)
//! expand to nothing.
//!
//! No serialisation actually happens anywhere in the workspace today — the
//! derives exist so the data types keep their (de)serialisable contract for
//! the day a real serialisation backend is wired in. Swapping this directory
//! for the crates.io `serde` restores full functionality without touching any
//! annotated type.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that declare themselves serialisable.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that declare themselves deserialisable.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
