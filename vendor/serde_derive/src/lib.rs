//! Derive macros backing the offline `serde` stand-in.
//!
//! [`Serialize`]/[`Deserialize`] still accept (and ignore) `#[serde(...)]`
//! helper attributes and expand to nothing — the blanket marker impls in the
//! `serde` stand-in cover every type. [`ToJson`] is real: it parses the
//! struct definition out of the raw token stream (no `syn`/`quote` in this
//! offline environment) and emits a field-by-field
//! `impl serde::json::ToJson` for plain structs with named fields, so new
//! result types serialise without hand-written impls. Field order in the
//! JSON object is declaration order, matching what the hand-written impls
//! it replaces produced.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Expands to nothing; `impl<T> Serialize for T` in the `serde` stand-in
/// already covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `impl<'de, T> Deserialize<'de> for T` in the `serde`
/// stand-in already covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives `serde::json::ToJson` for a plain (non-generic) struct with
/// named fields: the JSON object holds every field in declaration order,
/// each serialised through its own `ToJson` impl.
///
/// Tuple structs, unit structs, enums and generic structs are rejected with
/// a compile error naming the limitation — the offline writer only needs
/// plain result-record structs.
#[proc_macro_derive(ToJson)]
pub fn derive_to_json(input: TokenStream) -> TokenStream {
    match parse_named_struct(input) {
        Ok((name, fields)) => {
            let body: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::json::ToJson::to_json(&self.{f})),"))
                .collect();
            format!(
                "impl serde::json::ToJson for {name} {{\n\
                     fn to_json(&self) -> serde::json::JsonValue {{\n\
                         serde::json::JsonValue::Obj(vec![{body}])\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("derive(ToJson): generated impl must tokenise")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("literal"),
    }
}

/// Extracts `(struct_name, field_names)` from the token stream of a struct
/// item, or an error message describing why the shape is unsupported.
fn parse_named_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let mut tokens = input.into_iter().peekable();
    // skip outer attributes (`#[...]`) and visibility to reach `struct`
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // optional restriction: pub(crate), pub(super), ...
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        _ => return Err("derive(ToJson) supports only structs".to_string()),
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(ToJson): missing struct name".to_string()),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err("derive(ToJson) does not support generic structs".to_string())
        }
        _ => return Err("derive(ToJson) supports only structs with named fields".to_string()),
    };

    // fields: `attrs* vis? name : type`, separated by top-level commas
    // (angle-bracket depth tracked so `Vec<(A, B)>` commas do not split)
    let mut fields = Vec::new();
    let mut field_tokens = body.stream().into_iter().peekable();
    loop {
        // skip field attributes and visibility
        loop {
            match field_tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    field_tokens.next();
                    field_tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    field_tokens.next();
                    if let Some(TokenTree::Group(g)) = field_tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            field_tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match field_tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!(
                    "derive(ToJson): expected a field name, found `{other}`"
                ))
            }
        };
        match field_tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "derive(ToJson): field `{field}` must use named-field syntax"
                ))
            }
        }
        fields.push(field);
        // consume the type up to the next top-level comma, tracking angle
        // depth so generic-argument commas do not split (a `->` arrow's `>`
        // is not a closing bracket)
        let mut angle_depth = 0usize;
        let mut prev_dash = false;
        for tok in field_tokens.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' if !prev_dash => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            } else {
                prev_dash = false;
            }
        }
    }
    Ok((name, fields))
}
