//! No-op derive macros backing the offline `serde` stand-in.
//!
//! Each derive accepts (and ignores) `#[serde(...)]` helper attributes so
//! annotated types compile unchanged; the blanket trait impls live in the
//! `serde` stand-in crate, so the derives themselves emit nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `impl<T> Serialize for T` in the `serde` stand-in
/// already covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `impl<'de, T> Deserialize<'de> for T` in the `serde`
/// stand-in already covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
